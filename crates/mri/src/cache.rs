//! Overlap-aware reader-side I/O plane: the lifetime-exact slice cache.
//!
//! The paper's chunked retrieval (§4.4, Eqs. 1–2) makes adjacent chunks
//! overlap by `ROI − 1` voxels per axis, so a reading filter that walks the
//! [`ChunkGrid`] re-reads every halo slice from disk once per chunk that
//! touches it — up to `roi − 1`-fold on the z and t axes. But the grid fixes
//! the chunk emission order completely, which means the *first and last
//! chunk to consume each slice are known before the first byte is read*.
//! This module exploits that:
//!
//! * [`ReusePlan`] replays the reader's exact emission order (chunk grid
//!   order, `t` outer, `z` inner, skipping slices another storage node
//!   owns) and derives per-[`SliceKey`] first/last-use chunk sequence
//!   numbers;
//! * [`SliceCache`] retains each decoded slice from its first read until
//!   its last consuming chunk completes ([`SliceCache::advance`]), so with
//!   a sufficient byte budget every slice is read from disk **exactly
//!   once** per run — and when retention would exceed the budget, the
//!   slice is served without being retained and simply re-read later (the
//!   correct-but-slower fallback);
//! * the cache is prefetch-safe: a per-key *loading* state guarantees the
//!   exactly-once property even when a read-ahead thread and the consumer
//!   race for the same slice, and [`SliceCache::wait_for_window`] bounds
//!   how far ahead the prefetcher may run.
//!
//! Everything is instrumented through a shared [`IoStats`] (lock-free
//! counters), which the pipeline surfaces in its run report and the
//! `BENCH_io.json` exporter.

use crate::chunks::ChunkGrid;
use crate::dicom::{DicomDataset, DicomError};
use crate::store::{DistributedDataset, SliceKey};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Anything the slice cache can decode whole 2D slices from.
///
/// Implemented by the raw [`DistributedDataset`] and the DICOM
/// [`DicomDataset`] (and by references to either, so a filter can build a
/// cache over a dataset it keeps owning).
pub trait SliceSource {
    /// In-plane slice extents `(x, y)`.
    fn slice_dims(&self) -> (usize, usize);

    /// Loads one full slice, row-major, `x`-fastest.
    fn load_slice(&self, key: SliceKey) -> io::Result<Vec<u16>>;
}

impl<S: SliceSource + ?Sized> SliceSource for &S {
    fn slice_dims(&self) -> (usize, usize) {
        (**self).slice_dims()
    }

    fn load_slice(&self, key: SliceKey) -> io::Result<Vec<u16>> {
        (**self).load_slice(key)
    }
}

impl SliceSource for DistributedDataset {
    fn slice_dims(&self) -> (usize, usize) {
        let d = self.descriptor().dims;
        (d.x, d.y)
    }

    fn load_slice(&self, key: SliceKey) -> io::Result<Vec<u16>> {
        self.read_slice(key)
    }
}

impl SliceSource for DicomDataset {
    fn slice_dims(&self) -> (usize, usize) {
        let d = self.descriptor().dims;
        (d.x, d.y)
    }

    fn load_slice(&self, key: SliceKey) -> io::Result<Vec<u16>> {
        match self.read_slice(key) {
            Ok(s) => Ok(s.pixels),
            Err(DicomError::Io(e)) => Err(e),
            Err(e @ DicomError::Malformed(_)) => {
                Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
            }
        }
    }
}

/// Crops the `w x h` sub-rectangle at `(x0, y0)` out of a full row-major
/// slice of width `slice_x`, appending into `out` (cleared first). Shared by
/// the RFR and DFR filters so both serve chunk pieces from cached slices.
///
/// # Panics
/// If the rectangle does not fit inside the slice.
pub fn crop_subrect(
    slice: &[u16],
    slice_x: usize,
    x0: usize,
    y0: usize,
    w: usize,
    h: usize,
    out: &mut Vec<u16>,
) {
    assert!(
        x0 + w <= slice_x && slice_x != 0 && (y0 + h) * slice_x <= slice.len(),
        "crop {w}x{h} at ({x0}, {y0}) exceeds slice (width {slice_x}, len {})",
        slice.len()
    );
    out.clear();
    out.reserve(w * h);
    for y in y0..y0 + h {
        let start = y * slice_x + x0;
        out.extend_from_slice(&slice[start..start + w]);
    }
}

/// Per-slice first/last use, derived from the deterministic chunk emission
/// order of a [`ChunkGrid`] restricted to the slices one storage node owns.
///
/// Chunk *sequence numbers* are positions in [`ChunkGrid::chunks`] order
/// (identical to [`crate::chunks::Chunk::id`]); within one chunk, keys are
/// listed `t` outer, `z` inner — exactly the order the reading filters
/// request them.
#[derive(Debug, Clone)]
pub struct ReusePlan {
    /// Chunk seq → slice keys this reader loads for that chunk, in order.
    per_chunk: Vec<Vec<SliceKey>>,
    /// Key → (first, last) consuming chunk seq.
    lifetimes: HashMap<SliceKey, (usize, usize)>,
}

impl ReusePlan {
    /// Builds the plan for the keys `owned` selects (a storage-node
    /// predicate; pass `|_| true` for a single-reader run).
    pub fn new(grid: &ChunkGrid, owned: impl Fn(SliceKey) -> bool) -> Self {
        let mut per_chunk = Vec::with_capacity(grid.len());
        let mut lifetimes: HashMap<SliceKey, (usize, usize)> = HashMap::new();
        for (seq, chunk) in grid.chunks().enumerate() {
            let r = chunk.input;
            let mut keys = Vec::new();
            for t in r.origin.t..r.end().t {
                for z in r.origin.z..r.end().z {
                    let key = SliceKey { t, z };
                    if !owned(key) {
                        continue;
                    }
                    keys.push(key);
                    lifetimes
                        .entry(key)
                        .and_modify(|(_, last)| *last = seq)
                        .or_insert((seq, seq));
                }
            }
            per_chunk.push(keys);
        }
        Self {
            per_chunk,
            lifetimes,
        }
    }

    /// Number of chunks in the plan.
    pub fn chunks(&self) -> usize {
        self.per_chunk.len()
    }

    /// Slice keys chunk `seq` consumes, in request order.
    pub fn keys_for(&self, seq: usize) -> &[SliceKey] {
        &self.per_chunk[seq]
    }

    /// First/last consuming chunk seq of `key`, if any chunk uses it.
    pub fn lifetime(&self, key: SliceKey) -> Option<(usize, usize)> {
        self.lifetimes.get(&key).copied()
    }

    /// Number of distinct slices the plan touches.
    pub fn distinct_slices(&self) -> usize {
        self.lifetimes.len()
    }

    /// Total slice *requests* across all chunks (the reads a naive reader
    /// would issue); `total_requests - distinct_slices` is the redundancy
    /// the cache removes.
    pub fn total_requests(&self) -> usize {
        self.per_chunk.iter().map(Vec::len).sum()
    }
}

/// Lock-free counters for the reader-side I/O plane, shared across the
/// reading filter copies of one process.
#[derive(Debug, Default)]
pub struct IoStats {
    disk_reads: AtomicU64,
    bytes_read: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    prefetched: AtomicU64,
    budget_rejects: AtomicU64,
    retained_high_water: AtomicU64,
}

impl IoStats {
    /// Records one disk read of `bytes` bytes.
    pub fn record_disk_read(&self, bytes: u64) {
        self.disk_reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a request served from a retained slice.
    pub fn record_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request that had to go to disk (or to a naive read).
    pub fn record_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one slice loaded by the read-ahead thread before demand.
    pub fn record_prefetch(&self) {
        self.prefetched.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a load that could not be retained within the byte budget.
    pub fn record_budget_reject(&self) {
        self.budget_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Raises the retained-bytes high-water mark.
    pub fn record_retained(&self, bytes: u64) {
        self.retained_high_water.fetch_max(bytes, Ordering::Relaxed);
    }

    /// Disk reads issued.
    pub fn disk_reads(&self) -> u64 {
        self.disk_reads.load(Ordering::Relaxed)
    }

    /// Bytes read from disk.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Requests served from retained slices.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Requests that went to disk.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Slices loaded by read-ahead before demand.
    pub fn prefetched(&self) -> u64 {
        self.prefetched.load(Ordering::Relaxed)
    }

    /// Loads the byte budget refused to retain.
    pub fn budget_rejects(&self) -> u64 {
        self.budget_rejects.load(Ordering::Relaxed)
    }

    /// Highest number of retained bytes observed.
    pub fn retained_high_water(&self) -> u64 {
        self.retained_high_water.load(Ordering::Relaxed)
    }
}

/// One cache entry's lifecycle. `Loading` is the prefetch-safety device:
/// whoever transitions a key `Absent → Loading` (consumer or prefetcher)
/// is the only party that reads it from disk; everyone else waits on the
/// condvar for the transition out of `Loading`.
enum Entry {
    Loading,
    Present(Arc<Vec<u16>>),
}

struct CacheState {
    entries: HashMap<SliceKey, Entry>,
    /// Bytes held by `Present` entries.
    retained_bytes: usize,
    /// Chunks fully consumed so far (`advance` moves this forward).
    completed: usize,
    /// Raised once; unblocks window waits so the prefetcher can exit.
    shutdown: bool,
}

/// The lifetime-exact slice cache over a [`SliceSource`].
///
/// Correctness contract: [`SliceCache::get`] always returns the same pixels
/// as `source.load_slice(key)`; the cache changes *when* disk is touched,
/// never *what* is read. With `budget_bytes` at least the plan's peak
/// retention, each distinct slice is loaded exactly once.
pub struct SliceCache<S> {
    source: S,
    plan: ReusePlan,
    /// Retention cap in bytes. Loads always succeed; only *retention* is
    /// refused beyond the cap.
    budget_bytes: usize,
    state: Mutex<CacheState>,
    cond: Condvar,
    stats: Arc<IoStats>,
}

impl<S: SliceSource> SliceCache<S> {
    /// Creates a cache with a retention budget of `budget_bytes`, feeding
    /// the shared `stats`.
    pub fn new(source: S, plan: ReusePlan, budget_bytes: usize, stats: Arc<IoStats>) -> Self {
        Self {
            source,
            plan,
            budget_bytes,
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                retained_bytes: 0,
                completed: 0,
                shutdown: false,
            }),
            cond: Condvar::new(),
            stats,
        }
    }

    /// The plan this cache retains by.
    pub fn plan(&self) -> &ReusePlan {
        &self.plan
    }

    /// Bytes currently retained (tests and diagnostics).
    pub fn retained_bytes(&self) -> usize {
        self.state.lock().expect("cache lock").retained_bytes
    }

    /// Returns the full decoded slice, reading from disk at most once while
    /// the slice is retained. Concurrent requests for a slice mid-load wait
    /// for the in-flight read instead of issuing their own.
    pub fn get(&self, key: SliceKey) -> io::Result<Arc<Vec<u16>>> {
        {
            let mut st = self.state.lock().expect("cache lock");
            loop {
                match st.entries.get(&key) {
                    Some(Entry::Present(data)) => {
                        self.stats.record_hit();
                        return Ok(data.clone());
                    }
                    Some(Entry::Loading) => {
                        st = self.cond.wait(st).expect("cache lock");
                    }
                    None => {
                        st.entries.insert(key, Entry::Loading);
                        break;
                    }
                }
            }
        }
        self.stats.record_miss();
        self.finish_load(key, self.source.load_slice(key), false)
    }

    /// Loads every not-yet-cached slice of chunk `seq` that still fits the
    /// budget — the read-ahead thread's work item. I/O errors leave the key
    /// absent (the demand path will retry and surface them); slices whose
    /// retention would exceed the budget are skipped rather than loaded and
    /// dropped.
    pub fn prefetch_chunk(&self, seq: usize) {
        for &key in self.plan.keys_for(seq) {
            let claimed = {
                let mut st = self.state.lock().expect("cache lock");
                if st.shutdown || st.entries.contains_key(&key) {
                    false
                } else if st.retained_bytes >= self.budget_bytes {
                    // No room to retain: a prefetched-then-dropped slice
                    // would be pure wasted I/O. Leave it to the demand path.
                    false
                } else {
                    st.entries.insert(key, Entry::Loading);
                    true
                }
            };
            if !claimed {
                continue;
            }
            if self
                .finish_load(key, self.source.load_slice(key), true)
                .is_ok()
            {
                self.stats.record_prefetch();
            }
        }
    }

    /// Completes a claimed load: retains the slice if its last consuming
    /// chunk is still ahead and the budget allows, publishes it, and wakes
    /// every waiter. On error the key reverts to absent.
    fn finish_load(
        &self,
        key: SliceKey,
        loaded: io::Result<Vec<u16>>,
        prefetch: bool,
    ) -> io::Result<Arc<Vec<u16>>> {
        let mut st = self.state.lock().expect("cache lock");
        let data = match loaded {
            Ok(v) => {
                self.stats.record_disk_read(v.len() as u64 * 2);
                Arc::new(v)
            }
            Err(e) => {
                st.entries.remove(&key);
                self.cond.notify_all();
                return Err(e);
            }
        };
        let bytes = data.len() * 2;
        let has_future_use = self
            .plan
            .lifetime(key)
            .is_some_and(|(_, last)| last >= st.completed);
        let fits = st.retained_bytes + bytes <= self.budget_bytes;
        if has_future_use && fits {
            st.entries.insert(key, Entry::Present(data.clone()));
            st.retained_bytes += bytes;
            self.stats.record_retained(st.retained_bytes as u64);
        } else {
            // Serve without retaining; a later chunk re-reads it. A
            // prefetch load that no longer fits is also a reject (the
            // budget moved between the claim and the load).
            st.entries.remove(&key);
            if has_future_use || prefetch {
                self.stats.record_budget_reject();
            }
        }
        self.cond.notify_all();
        Ok(data)
    }

    /// Marks chunk `seq` fully consumed: slices whose last use that was are
    /// evicted, and the read-ahead window slides forward.
    pub fn advance(&self, seq: usize) {
        let mut st = self.state.lock().expect("cache lock");
        st.completed = st.completed.max(seq + 1);
        let completed = st.completed;
        let plan = &self.plan;
        let mut freed = 0usize;
        st.entries.retain(|key, entry| match entry {
            Entry::Loading => true,
            Entry::Present(data) => {
                let keep = plan
                    .lifetime(*key)
                    .is_some_and(|(_, last)| last >= completed);
                if !keep {
                    freed += data.len() * 2;
                }
                keep
            }
        });
        st.retained_bytes -= freed;
        self.cond.notify_all();
    }

    /// Blocks until the prefetcher may work on chunk `seq` — i.e. until
    /// `seq <= completed + ahead` — or the cache shuts down. Returns `false`
    /// on shutdown.
    pub fn wait_for_window(&self, seq: usize, ahead: usize) -> bool {
        let mut st = self.state.lock().expect("cache lock");
        while !st.shutdown && seq > st.completed + ahead {
            st = self.cond.wait(st).expect("cache lock");
        }
        !st.shutdown
    }

    /// Unblocks the prefetcher permanently. Must be called before joining a
    /// read-ahead thread on *every* exit path of the consumer, including
    /// errors — otherwise the join deadlocks on `wait_for_window`.
    pub fn shutdown(&self) {
        let mut st = self.state.lock().expect("cache lock");
        st.shutdown = true;
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunks::ChunkGrid;
    use haralick::roi::RoiShape;
    use haralick::volume::Dims4;
    use std::sync::atomic::AtomicUsize;

    /// A deterministic in-memory source that counts reads per key.
    struct CountingSource {
        dims: Dims4,
        reads: Mutex<HashMap<SliceKey, usize>>,
        total_reads: AtomicUsize,
    }

    impl CountingSource {
        fn new(dims: Dims4) -> Self {
            Self {
                dims,
                reads: Mutex::new(HashMap::new()),
                total_reads: AtomicUsize::new(0),
            }
        }

        fn pixel(&self, key: SliceKey, x: usize, y: usize) -> u16 {
            (key.t * 31 + key.z * 17 + y * 5 + x) as u16
        }

        fn reads_of(&self, key: SliceKey) -> usize {
            *self.reads.lock().unwrap().get(&key).unwrap_or(&0)
        }
    }

    impl SliceSource for CountingSource {
        fn slice_dims(&self) -> (usize, usize) {
            (self.dims.x, self.dims.y)
        }

        fn load_slice(&self, key: SliceKey) -> io::Result<Vec<u16>> {
            *self.reads.lock().unwrap().entry(key).or_insert(0) += 1;
            self.total_reads.fetch_add(1, Ordering::Relaxed);
            let mut v = Vec::with_capacity(self.dims.x * self.dims.y);
            for y in 0..self.dims.y {
                for x in 0..self.dims.x {
                    v.push(self.pixel(key, x, y));
                }
            }
            Ok(v)
        }
    }

    fn grid() -> ChunkGrid {
        ChunkGrid::new(
            Dims4::new(16, 16, 6, 6),
            RoiShape::from_lengths(4, 4, 3, 3),
            Dims4::new(8, 8, 4, 4),
        )
    }

    #[test]
    fn plan_lifetimes_are_ordered_and_cover_all_requests() {
        let g = grid();
        let plan = ReusePlan::new(&g, |_| true);
        assert_eq!(plan.chunks(), g.len());
        for seq in 0..plan.chunks() {
            for key in plan.keys_for(seq) {
                let (first, last) = plan.lifetime(*key).expect("requested key has a lifetime");
                assert!(first <= seq && seq <= last, "{key:?} used outside lifetime");
            }
        }
        // Overlapping chunks in z/t mean redundancy exists to remove.
        assert!(plan.total_requests() > plan.distinct_slices());
    }

    #[test]
    fn unlimited_budget_reads_each_slice_exactly_once() {
        let g = grid();
        let src = CountingSource::new(g.data_dims());
        let plan = ReusePlan::new(&g, |_| true);
        let distinct = plan.distinct_slices();
        let cache = SliceCache::new(&src, plan, usize::MAX, Arc::new(IoStats::default()));
        for (seq, chunk) in g.chunks().enumerate() {
            let r = chunk.input;
            for t in r.origin.t..r.end().t {
                for z in r.origin.z..r.end().z {
                    let key = SliceKey { t, z };
                    let slice = cache.get(key).unwrap();
                    assert_eq!(slice[1], src.pixel(key, 1, 0));
                }
            }
            cache.advance(seq);
        }
        assert_eq!(src.total_reads.load(Ordering::Relaxed), distinct);
        assert_eq!(cache.retained_bytes(), 0, "everything evicted at the end");
    }

    #[test]
    fn budget_is_never_exceeded_and_results_stay_correct() {
        let g = grid();
        let src = CountingSource::new(g.data_dims());
        let plan = ReusePlan::new(&g, |_| true);
        let slice_bytes = g.data_dims().x * g.data_dims().y * 2;
        let budget = 2 * slice_bytes;
        let stats = Arc::new(IoStats::default());
        let cache = SliceCache::new(&src, plan, budget, stats.clone());
        for (seq, chunk) in g.chunks().enumerate() {
            let r = chunk.input;
            for t in r.origin.t..r.end().t {
                for z in r.origin.z..r.end().z {
                    let key = SliceKey { t, z };
                    let slice = cache.get(key).unwrap();
                    assert_eq!(slice[5], src.pixel(key, 5, 0));
                    assert!(cache.retained_bytes() <= budget);
                }
            }
            cache.advance(seq);
        }
        assert!(stats.retained_high_water() as usize <= budget);
        assert!(stats.budget_rejects() > 0, "tiny budget must have rejected");
    }

    #[test]
    fn io_error_leaves_key_retryable() {
        struct Flaky {
            inner: CountingSource,
            fail_first: Mutex<bool>,
        }
        impl SliceSource for Flaky {
            fn slice_dims(&self) -> (usize, usize) {
                self.inner.slice_dims()
            }
            fn load_slice(&self, key: SliceKey) -> io::Result<Vec<u16>> {
                let mut f = self.fail_first.lock().unwrap();
                if *f {
                    *f = false;
                    return Err(io::Error::other("injected"));
                }
                self.inner.load_slice(key)
            }
        }
        let g = grid();
        let src = Flaky {
            inner: CountingSource::new(g.data_dims()),
            fail_first: Mutex::new(true),
        };
        let plan = ReusePlan::new(&g, |_| true);
        let cache = SliceCache::new(&src, plan, usize::MAX, Arc::new(IoStats::default()));
        let key = SliceKey { t: 0, z: 0 };
        assert!(cache.get(key).is_err());
        // The failed load must not wedge the entry in `Loading`.
        let slice = cache.get(key).unwrap();
        assert_eq!(slice[0], src.inner.pixel(key, 0, 0));
    }

    #[test]
    fn prefetch_and_demand_never_double_read() {
        let g = grid();
        let src = CountingSource::new(g.data_dims());
        let plan = ReusePlan::new(&g, |_| true);
        let distinct = plan.distinct_slices();
        let stats = Arc::new(IoStats::default());
        let cache = SliceCache::new(&src, plan, usize::MAX, stats.clone());
        std::thread::scope(|s| {
            s.spawn(|| {
                for seq in 0..cache.plan().chunks() {
                    if !cache.wait_for_window(seq, 2) {
                        break;
                    }
                    cache.prefetch_chunk(seq);
                }
            });
            for (seq, chunk) in g.chunks().enumerate() {
                let r = chunk.input;
                for t in r.origin.t..r.end().t {
                    for z in r.origin.z..r.end().z {
                        let key = SliceKey { t, z };
                        let slice = cache.get(key).unwrap();
                        assert_eq!(slice[0], src.pixel(key, 0, 0));
                    }
                }
                cache.advance(seq);
            }
            cache.shutdown();
        });
        assert_eq!(
            src.total_reads.load(Ordering::Relaxed),
            distinct,
            "prefetcher and consumer must coordinate to exactly-once"
        );
        assert_eq!(stats.disk_reads() as usize, distinct);
    }

    #[test]
    fn shutdown_unblocks_waiting_prefetcher() {
        let g = grid();
        let src = CountingSource::new(g.data_dims());
        let plan = ReusePlan::new(&g, |_| true);
        let cache = SliceCache::new(&src, plan, usize::MAX, Arc::new(IoStats::default()));
        std::thread::scope(|s| {
            let h = s.spawn(|| cache.wait_for_window(1000, 0));
            cache.shutdown();
            assert!(!h.join().unwrap(), "shutdown must return false");
        });
    }

    #[test]
    fn crop_matches_direct_indexing() {
        let src = CountingSource::new(Dims4::new(9, 7, 1, 1));
        let key = SliceKey { t: 0, z: 0 };
        let slice = src.load_slice(key).unwrap();
        let mut out = Vec::new();
        crop_subrect(&slice, 9, 2, 3, 4, 3, &mut out);
        for y in 0..3 {
            for x in 0..4 {
                assert_eq!(out[y * 4 + x], src.pixel(key, 2 + x, 3 + y));
            }
        }
    }
}
