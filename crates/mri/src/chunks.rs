//! Chunked data retrieval geometry (paper §4.4, Figure 6, Eqs. 1–2).
//!
//! A complete 4D ROI is needed to build one co-occurrence matrix. Retrieving
//! the data *by ROIs* resends every overlapped voxel many times — the
//! largest possible communication volume. Instead, data is retrieved in
//! larger **chunks**, each carrying a subset of ROIs plus a halo, so that
//! adjacent chunks overlap by exactly `ROI − 1` voxels per axis:
//!
//! ```text
//! overlap_x = ROI_x − 1        (Eq. 1)
//! overlap_y = ROI_y − 1        (Eq. 2)
//! ```
//!
//! [`ChunkGrid`] partitions the *output* (ROI-origin) space into disjoint
//! ownership regions and derives for each chunk the *input* region (owned
//! extent + halo) that must be shipped to a texture filter. The union of
//! owned regions tiles the output exactly; the union of input regions covers
//! the dataset with the Eq. 1–2 overlap.

use haralick::roi::RoiShape;
use haralick::volume::{Dims4, Point4, Region4};
use serde::{Deserialize, Serialize};

/// One retrieval chunk: the output points it owns and the input voxels it
/// needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chunk {
    /// Position in the chunk grid (x, y, z, t chunk indices).
    pub grid_pos: Point4,
    /// Sequential chunk id in x-fastest grid order.
    pub id: usize,
    /// ROI origins this chunk is responsible for (disjoint across chunks).
    pub owned_output: Region4,
    /// Input voxels required: `owned_output` expanded by the ROI halo.
    pub input: Region4,
}

impl Chunk {
    /// Number of input voxels shipped for this chunk.
    pub const fn input_voxels(&self) -> usize {
        self.input.len()
    }

    /// Number of ROIs (co-occurrence matrices) this chunk produces.
    pub const fn rois(&self) -> usize {
        self.owned_output.len()
    }
}

/// The partition of a dataset into IIC-to-TEXTURE chunks for a given ROI.
///
/// ```
/// use haralick::roi::RoiShape;
/// use haralick::volume::Dims4;
/// use mri::chunks::ChunkGrid;
///
/// let grid = ChunkGrid::new(
///     Dims4::new(256, 256, 32, 32),      // the paper's dataset
///     RoiShape::paper_default(),         // 10x10x3x3
///     Dims4::new(64, 64, 8, 8),          // the paper's chunk size
/// );
/// // Adjacent chunks overlap by ROI − 1 per axis (paper Eqs. 1–2) ...
/// let a = grid.chunk_at(haralick::Point4::new(0, 0, 0, 0));
/// let b = grid.chunk_at(haralick::Point4::new(1, 0, 0, 0));
/// assert_eq!(a.input.intersect(&b.input).size.x, 9);
/// // ... and chunked retrieval ships far less than per-ROI retrieval.
/// assert!(grid.retrieval_volume_by_chunk() * 50 < grid.retrieval_volume_by_roi());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkGrid {
    data_dims: Dims4,
    roi: RoiShape,
    chunk_dims: Dims4,
    out_dims: Dims4,
    step: Dims4,
    counts: Dims4,
}

impl ChunkGrid {
    /// Builds the grid. `chunk_dims` is the user-specified chunk size
    /// *including* the halo (the paper's `64x64x8x8`); it must be at least
    /// as large as the ROI in every axis.
    ///
    /// # Panics
    /// If the ROI does not fit in `chunk_dims` or in `data_dims`.
    pub fn new(data_dims: Dims4, roi: RoiShape, chunk_dims: Dims4) -> Self {
        assert!(
            roi.fits_in(chunk_dims),
            "chunk {chunk_dims} smaller than ROI {:?}",
            roi.size()
        );
        assert!(
            roi.fits_in(data_dims),
            "ROI {:?} does not fit in dataset {data_dims}",
            roi.size()
        );
        let out_dims = roi.output_dims(data_dims);
        // Owned output extent per interior chunk: chunk − ROI + 1.
        let step = Dims4::new(
            chunk_dims.x - roi.size().x + 1,
            chunk_dims.y - roi.size().y + 1,
            chunk_dims.z - roi.size().z + 1,
            chunk_dims.t - roi.size().t + 1,
        );
        let counts = Dims4::new(
            out_dims.x.div_ceil(step.x),
            out_dims.y.div_ceil(step.y),
            out_dims.z.div_ceil(step.z),
            out_dims.t.div_ceil(step.t),
        );
        Self {
            data_dims,
            roi,
            chunk_dims,
            out_dims,
            step,
            counts,
        }
    }

    /// Dataset extents.
    pub const fn data_dims(&self) -> Dims4 {
        self.data_dims
    }

    /// The ROI this grid was built for.
    pub const fn roi(&self) -> &RoiShape {
        &self.roi
    }

    /// Requested chunk extents (including halo).
    pub const fn chunk_dims(&self) -> Dims4 {
        self.chunk_dims
    }

    /// Output feature-map extents.
    pub const fn out_dims(&self) -> Dims4 {
        self.out_dims
    }

    /// Number of chunks along each axis.
    pub const fn counts(&self) -> Dims4 {
        self.counts
    }

    /// Total number of chunks.
    pub const fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the grid has no chunks (the ROI does not fit the dataset).
    pub const fn is_empty(&self) -> bool {
        self.counts.len() == 0
    }

    /// The chunk at grid position `g`.
    ///
    /// # Panics
    /// If `g` is outside the grid.
    pub fn chunk_at(&self, g: Point4) -> Chunk {
        assert!(self.counts.contains(g), "chunk position {g:?} out of grid");
        let origin = Point4::new(
            g.x * self.step.x,
            g.y * self.step.y,
            g.z * self.step.z,
            g.t * self.step.t,
        );
        let owned_size = Dims4::new(
            self.step.x.min(self.out_dims.x - origin.x),
            self.step.y.min(self.out_dims.y - origin.y),
            self.step.z.min(self.out_dims.z - origin.z),
            self.step.t.min(self.out_dims.t - origin.t),
        );
        let owned_output = Region4::new(origin, owned_size);
        let halo = self.roi.overlap();
        let input = Region4::new(
            origin,
            Dims4::new(
                owned_size.x + halo.x,
                owned_size.y + halo.y,
                owned_size.z + halo.z,
                owned_size.t + halo.t,
            ),
        );
        Chunk {
            grid_pos: g,
            id: self.counts.index(g),
            owned_output,
            input,
        }
    }

    /// Iterates over all chunks in x-fastest grid order.
    pub fn chunks(&self) -> impl Iterator<Item = Chunk> + '_ {
        self.counts.region().points().map(|g| self.chunk_at(g))
    }

    /// Total voxels shipped when retrieving **by chunk** — the paper's
    /// chosen strategy (Figure 6b).
    pub fn retrieval_volume_by_chunk(&self) -> usize {
        self.chunks().map(|c| c.input_voxels()).sum()
    }

    /// Total voxels shipped when retrieving **by ROI** — every window sent
    /// separately, overlaps re-transmitted (Figure 6a). This is
    /// `placements × ROI volume`.
    pub fn retrieval_volume_by_roi(&self) -> usize {
        self.roi.placements(self.data_dims) * self.roi.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn grid() -> ChunkGrid {
        ChunkGrid::new(
            Dims4::new(64, 64, 8, 8),
            RoiShape::from_lengths(10, 10, 3, 3),
            Dims4::new(32, 32, 4, 4),
        )
    }

    #[test]
    fn owned_outputs_tile_exactly() {
        let g = grid();
        let mut seen: HashSet<Point4> = HashSet::new();
        for c in g.chunks() {
            for p in c.owned_output.points() {
                assert!(seen.insert(p), "output point {p:?} owned twice");
            }
        }
        assert_eq!(seen.len(), g.out_dims().len(), "output points missing");
    }

    #[test]
    fn every_owned_roi_fits_in_input() {
        let g = grid();
        for c in g.chunks() {
            for origin in c.owned_output.points() {
                let roi_region = g.roi().region_at(origin);
                assert!(
                    c.input.contains_region(&roi_region),
                    "ROI at {origin:?} escapes chunk input {:?}",
                    c.input
                );
            }
            assert!(
                g.data_dims().region().contains_region(&c.input),
                "chunk input exceeds dataset"
            );
        }
    }

    #[test]
    fn adjacent_interior_chunks_overlap_by_roi_minus_one() {
        // Paper Eqs. 1-2.
        let g = grid();
        let a = g.chunk_at(Point4::new(0, 0, 0, 0));
        let b = g.chunk_at(Point4::new(1, 0, 0, 0));
        let overlap = a.input.intersect(&b.input);
        assert_eq!(overlap.size.x, g.roi().size().x - 1);
        let c = g.chunk_at(Point4::new(0, 1, 0, 0));
        let overlap_y = a.input.intersect(&c.input);
        assert_eq!(overlap_y.size.y, g.roi().size().y - 1);
    }

    #[test]
    fn interior_chunk_has_requested_dims() {
        let g = grid();
        let c = g.chunk_at(Point4::new(0, 0, 0, 0));
        assert_eq!(c.input.size, g.chunk_dims());
    }

    #[test]
    fn edge_chunks_are_clamped() {
        let g = ChunkGrid::new(
            Dims4::new(50, 50, 5, 5),
            RoiShape::from_lengths(10, 10, 3, 3),
            Dims4::new(32, 32, 4, 4),
        );
        for c in g.chunks() {
            assert!(g.data_dims().region().contains_region(&c.input));
            assert!(c.rois() > 0, "empty chunk emitted");
        }
    }

    #[test]
    fn by_roi_volume_dwarfs_by_chunk_volume() {
        // The motivation for chunked retrieval: at paper-like geometry the
        // by-ROI strategy ships orders of magnitude more data.
        let g = ChunkGrid::new(
            Dims4::new(256, 256, 32, 32),
            RoiShape::paper_default(),
            Dims4::new(64, 64, 8, 8),
        );
        let by_roi = g.retrieval_volume_by_roi();
        let by_chunk = g.retrieval_volume_by_chunk();
        assert!(
            by_roi > 50 * by_chunk,
            "by-ROI {by_roi} not far above by-chunk {by_chunk}"
        );
        // And chunking costs only a bounded overhead above the raw dataset.
        let raw = g.data_dims().len();
        assert!(by_chunk < 3 * raw, "chunk halo overhead too large");
    }

    #[test]
    fn chunk_ids_are_sequential() {
        let g = grid();
        let ids: Vec<usize> = g.chunks().map(|c| c.id).collect();
        let expect: Vec<usize> = (0..g.len()).collect();
        assert_eq!(ids, expect);
    }

    #[test]
    fn chunk_equal_to_dataset_is_single_chunk() {
        let g = ChunkGrid::new(
            Dims4::new(20, 20, 4, 4),
            RoiShape::from_lengths(5, 5, 2, 2),
            Dims4::new(20, 20, 4, 4),
        );
        assert_eq!(g.len(), 1);
        let c = g.chunk_at(Point4::ZERO);
        assert_eq!(c.input.size, g.data_dims());
        assert_eq!(c.owned_output.size, g.out_dims());
    }

    #[test]
    #[should_panic(expected = "smaller than ROI")]
    fn chunk_smaller_than_roi_rejected() {
        let _ = ChunkGrid::new(
            Dims4::new(64, 64, 8, 8),
            RoiShape::from_lengths(10, 10, 3, 3),
            Dims4::new(8, 8, 4, 4),
        );
    }
}
