//! In-memory raw (unquantized) 4D intensity volumes.

use haralick::quantize::Quantizer;
use haralick::volume::{Dims4, LevelVolume, Point4, Region4};
use serde::{Deserialize, Serialize};

/// A 4D volume of raw `u16` intensities in x-fastest order — the form data
/// takes before gray-level requantization. Each voxel is 2 bytes, matching
/// the paper's dataset ("Each pixel is 2 bytes in size").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawVolume {
    dims: Dims4,
    data: Vec<u16>,
}

impl RawVolume {
    /// Builds a volume from raw data.
    ///
    /// # Panics
    /// If `data.len() != dims.len()`.
    pub fn new(dims: Dims4, data: Vec<u16>) -> Self {
        assert_eq!(data.len(), dims.len(), "data does not match dims");
        Self { dims, data }
    }

    /// An all-zero volume.
    pub fn zeros(dims: Dims4) -> Self {
        Self::new(dims, vec![0; dims.len()])
    }

    /// Extents.
    pub const fn dims(&self) -> Dims4 {
        self.dims
    }

    /// Intensity at a point.
    #[inline]
    pub fn get(&self, p: Point4) -> u16 {
        self.data[self.dims.index(p)]
    }

    /// Sets the intensity at a point.
    pub fn set(&mut self, p: Point4, v: u16) {
        let i = self.dims.index(p);
        self.data[i] = v;
    }

    /// Raw data in x-fastest order.
    pub fn as_slice(&self) -> &[u16] {
        &self.data
    }

    /// Size in bytes when stored on disk or transmitted (2 bytes/voxel).
    pub const fn byte_len(&self) -> usize {
        self.dims.len() * 2
    }

    /// The 2D slice `(z, t)` as a contiguous row-major `u16` buffer — the
    /// unit the distributed store writes to one file.
    pub fn slice_2d(&self, z: usize, t: usize) -> &[u16] {
        assert!(
            z < self.dims.z && t < self.dims.t,
            "slice (z={z}, t={t}) out of range"
        );
        let start = self.dims.index(Point4::new(0, 0, z, t));
        &self.data[start..start + self.dims.x * self.dims.y]
    }

    /// Copies a sub-region into a new smaller volume.
    ///
    /// # Panics
    /// If the region does not fit.
    pub fn extract(&self, region: Region4) -> RawVolume {
        assert!(
            self.dims.region().contains_region(&region),
            "extract region {region:?} exceeds volume {:?}",
            self.dims
        );
        let mut out = Vec::with_capacity(region.len());
        let o = region.origin;
        let s = region.size;
        for t in 0..s.t {
            for z in 0..s.z {
                for y in 0..s.y {
                    let start = self.dims.index(Point4::new(o.x, o.y + y, o.z + z, o.t + t));
                    out.extend_from_slice(&self.data[start..start + s.x]);
                }
            }
        }
        RawVolume::new(s, out)
    }

    /// Pastes `src` into `self` with its origin at `at` (inverse of
    /// [`RawVolume::extract`]).
    pub fn paste(&mut self, src: &RawVolume, at: Point4) {
        let dst_region = Region4::new(at, src.dims);
        assert!(
            self.dims.region().contains_region(&dst_region),
            "paste target {dst_region:?} exceeds volume {:?}",
            self.dims
        );
        let s = src.dims;
        for t in 0..s.t {
            for z in 0..s.z {
                for y in 0..s.y {
                    let src_start = s.index(Point4::new(0, y, z, t));
                    let dst_start =
                        self.dims
                            .index(Point4::new(at.x, at.y + y, at.z + z, at.t + t));
                    self.data[dst_start..dst_start + s.x]
                        .copy_from_slice(&src.data[src_start..src_start + s.x]);
                }
            }
        }
    }

    /// Pastes a `w x h` row-major 2D plane into `self` with its origin at
    /// `at` — [`RawVolume::paste`] without requiring the plane to be wrapped
    /// in its own `RawVolume` first, so stitching filters can paste borrowed
    /// pixel buffers directly.
    ///
    /// # Panics
    /// If `plane.len() != w * h` or the plane does not fit at `at`.
    pub fn paste_plane(&mut self, w: usize, h: usize, plane: &[u16], at: Point4) {
        assert_eq!(plane.len(), w * h, "plane does not match {w}x{h}");
        let dst_region = Region4::new(at, Dims4::new(w, h, 1, 1));
        assert!(
            self.dims.region().contains_region(&dst_region),
            "paste target {dst_region:?} exceeds volume {:?}",
            self.dims
        );
        for y in 0..h {
            let dst_start = self.dims.index(Point4::new(at.x, at.y + y, at.z, at.t));
            self.data[dst_start..dst_start + w].copy_from_slice(&plane[y * w..(y + 1) * w]);
        }
    }

    /// Consumes the volume, returning its backing store (so callers can
    /// recycle the allocation through a buffer pool).
    pub fn into_data(self) -> Vec<u16> {
        self.data
    }

    /// Requantizes into a [`LevelVolume`] with the given quantizer.
    pub fn quantize(&self, q: &Quantizer) -> LevelVolume {
        q.quantize(self.dims, &self.data)
    }

    /// Builds the paper's standard quantizer (min/max over this volume) and
    /// applies it. `levels` is `Ng`, 32 in the experiments.
    pub fn quantize_min_max(&self, levels: u16) -> LevelVolume {
        self.quantize(&Quantizer::min_max(levels, &self.data))
    }

    /// Serializes the voxel data as little-endian bytes.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * 2);
        for &v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserializes little-endian voxel bytes.
    ///
    /// # Panics
    /// If `bytes.len() != 2 * dims.len()`.
    pub fn from_le_bytes(dims: Dims4, bytes: &[u8]) -> Self {
        assert_eq!(
            bytes.len(),
            dims.len() * 2,
            "byte length does not match dims"
        );
        let data = bytes
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();
        Self::new(dims, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(dims: Dims4) -> RawVolume {
        let data: Vec<u16> = (0..dims.len()).map(|i| (i % 4096) as u16).collect();
        RawVolume::new(dims, data)
    }

    #[test]
    fn slice_2d_is_contiguous_plane() {
        let v = ramp(Dims4::new(4, 3, 2, 2));
        let s = v.slice_2d(1, 1);
        assert_eq!(s.len(), 12);
        assert_eq!(s[0], v.get(Point4::new(0, 0, 1, 1)));
        assert_eq!(s[11], v.get(Point4::new(3, 2, 1, 1)));
    }

    #[test]
    fn extract_paste_roundtrip() {
        let v = ramp(Dims4::new(8, 7, 3, 3));
        let r = Region4::new(Point4::new(2, 1, 1, 0), Dims4::new(4, 3, 2, 2));
        let sub = v.extract(r);
        let mut blank = RawVolume::zeros(v.dims());
        blank.paste(&sub, r.origin);
        for p in r.points() {
            assert_eq!(blank.get(p), v.get(p));
        }
    }

    #[test]
    fn paste_plane_matches_paste_of_wrapped_plane() {
        let v = ramp(Dims4::new(8, 7, 3, 3));
        let r = Region4::new(Point4::new(2, 1, 1, 2), Dims4::new(4, 3, 1, 1));
        let sub = v.extract(r);
        let mut a = RawVolume::zeros(v.dims());
        a.paste(&sub, r.origin);
        let mut b = RawVolume::zeros(v.dims());
        b.paste_plane(4, 3, sub.as_slice(), r.origin);
        assert_eq!(a, b);
        assert_eq!(sub.clone().into_data(), sub.as_slice());
    }

    #[test]
    fn byte_roundtrip() {
        let v = ramp(Dims4::new(5, 4, 2, 2));
        let bytes = v.to_le_bytes();
        assert_eq!(bytes.len(), v.byte_len());
        let back = RawVolume::from_le_bytes(v.dims(), &bytes);
        assert_eq!(v, back);
    }

    #[test]
    fn quantize_min_max_produces_valid_levels() {
        let v = ramp(Dims4::new(16, 16, 2, 2));
        let lv = v.quantize_min_max(32);
        assert_eq!(lv.levels(), 32);
        assert_eq!(lv.dims(), v.dims());
        assert!(lv.as_slice().iter().all(|&l| l < 32));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        let v = ramp(Dims4::new(4, 4, 2, 2));
        let _ = v.slice_2d(2, 0);
    }
}
