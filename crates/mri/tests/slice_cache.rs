//! Property tests for the overlap-aware slice cache (`mri::cache`) over
//! random chunk geometries.
//!
//! The cache's contract has three parts, each checked against a counting
//! in-memory [`SliceSource`] while replaying the reading filters' exact
//! emission order (chunk grid order, `t` outer, `z` inner, ownership
//! filtered):
//!
//! 1. with an unlimited budget every distinct slice is read from disk
//!    **exactly once**, including when the slices are split across several
//!    storage-node readers;
//! 2. every piece cropped out of a cached slice is pixel-identical to a
//!    crop of an uncached direct read — the cache changes *when* disk is
//!    touched, never *what* is read;
//! 3. retained bytes never exceed the budget, for any budget.

use haralick::roi::RoiShape;
use haralick::volume::Dims4;
use mri::chunks::ChunkGrid;
use mri::store::SliceKey;
use mri::{crop_subrect, IoStats, ReusePlan, SliceCache, SliceSource};
use proptest::prelude::*;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Deterministic in-memory slice store that counts every disk read.
struct CountingSource {
    dims: Dims4,
    reads: Mutex<HashMap<SliceKey, usize>>,
    total_reads: AtomicUsize,
}

impl CountingSource {
    fn new(dims: Dims4) -> Self {
        Self {
            dims,
            reads: Mutex::new(HashMap::new()),
            total_reads: AtomicUsize::new(0),
        }
    }

    fn pixel(&self, key: SliceKey, x: usize, y: usize) -> u16 {
        (key.t.wrapping_mul(193) ^ key.z.wrapping_mul(131) ^ y.wrapping_mul(17) ^ x) as u16
    }

    fn max_reads_of_any_key(&self) -> usize {
        self.reads
            .lock()
            .unwrap()
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

impl SliceSource for CountingSource {
    fn slice_dims(&self) -> (usize, usize) {
        (self.dims.x, self.dims.y)
    }

    fn load_slice(&self, key: SliceKey) -> io::Result<Vec<u16>> {
        *self.reads.lock().unwrap().entry(key).or_insert(0) += 1;
        self.total_reads.fetch_add(1, Ordering::Relaxed);
        let mut v = Vec::with_capacity(self.dims.x * self.dims.y);
        for y in 0..self.dims.y {
            for x in 0..self.dims.x {
                v.push(self.pixel(key, x, y));
            }
        }
        Ok(v)
    }
}

/// Replays one reader's full run over `grid` restricted to `owned`,
/// asserting every cropped piece matches an uncached direct read. Returns
/// the stats the run produced.
fn replay_reader(
    grid: &ChunkGrid,
    src: &CountingSource,
    owned: impl Fn(SliceKey) -> bool,
    budget: usize,
) -> Result<Arc<IoStats>, TestCaseError> {
    let plan = ReusePlan::new(grid, owned);
    let stats = Arc::new(IoStats::default());
    let cache = SliceCache::new(src, plan, budget, stats.clone());
    let (slice_x, _) = src.slice_dims();
    let mut piece = Vec::new();
    for (seq, chunk) in grid.chunks().enumerate() {
        let r = chunk.input;
        for &key in cache.plan().keys_for(seq) {
            let slice = cache.get(key).unwrap();
            crop_subrect(
                &slice, slice_x, r.origin.x, r.origin.y, r.size.x, r.size.y, &mut piece,
            );
            // Pixel-identical to an uncached read of the same rectangle.
            for dy in 0..r.size.y {
                for dx in 0..r.size.x {
                    prop_assert_eq!(
                        piece[dy * r.size.x + dx],
                        src.pixel(key, r.origin.x + dx, r.origin.y + dy),
                        "cached crop diverges at ({}, {}) of {:?}",
                        dx,
                        dy,
                        key
                    );
                }
            }
            prop_assert!(
                cache.retained_bytes() <= budget,
                "retained {} exceeds budget {}",
                cache.retained_bytes(),
                budget
            );
        }
        cache.advance(seq);
    }
    Ok(stats)
}

fn geometry(
    xs: usize,
    ys: usize,
    zs: usize,
    ts: usize,
    roi: (usize, usize, usize, usize),
    extra: (usize, usize, usize, usize),
) -> ChunkGrid {
    let roi = RoiShape::from_lengths(roi.0, roi.1, roi.2, roi.3);
    let chunk = Dims4::new(
        roi.size().x + extra.0,
        roi.size().y + extra.1,
        roi.size().z + extra.2,
        roi.size().t + extra.3,
    );
    ChunkGrid::new(Dims4::new(xs, ys, zs, ts), roi, chunk)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unlimited budget: every reader loads each of its distinct slices
    /// exactly once, even with the dataset split round-robin across
    /// several storage nodes, and all crops stay pixel-identical.
    #[test]
    fn unlimited_budget_is_exactly_once_across_node_splits(
        xs in 8usize..=20,
        ys in 8usize..=20,
        zs in 3usize..=7,
        ts in 3usize..=7,
        rx in 2usize..=5,
        ry in 2usize..=5,
        rz in 1usize..=3,
        rt in 1usize..=3,
        ex in 0usize..=6,
        ey in 0usize..=6,
        ez in 0usize..=3,
        et in 0usize..=3,
        nodes in 1usize..=3,
    ) {
        let grid = geometry(xs, ys, zs, ts, (rx, ry, rz, rt), (ex, ey, ez, et));
        let mut covered = 0;
        for node in 0..nodes {
            let owned = move |key: SliceKey| (key.t * zs + key.z) % nodes == node;
            let plan = ReusePlan::new(&grid, owned);
            covered += plan.distinct_slices();
            let src = CountingSource::new(grid.data_dims());
            let stats = replay_reader(&grid, &src, owned, usize::MAX)?;
            prop_assert_eq!(
                src.total_reads.load(Ordering::Relaxed),
                plan.distinct_slices(),
                "node {} of {} read some slice more than once",
                node,
                nodes
            );
            prop_assert!(src.max_reads_of_any_key() <= 1);
            prop_assert_eq!(stats.disk_reads() as usize, plan.distinct_slices());
            prop_assert_eq!(
                stats.cache_hits() + stats.cache_misses(),
                ReusePlan::new(&grid, owned).total_requests() as u64
            );
        }
        // The round-robin predicates partition the slices: together the
        // node readers cover every distinct slice exactly once.
        prop_assert_eq!(covered, ReusePlan::new(&grid, |_| true).distinct_slices());
    }

    /// Any budget, including pathologically small ones: retention never
    /// exceeds the cap, results stay pixel-identical, and the number of
    /// disk reads never exceeds the naive reader's (one per request) nor
    /// drops below one per distinct slice.
    #[test]
    fn bounded_budget_never_exceeds_cap_and_stays_correct(
        xs in 8usize..=16,
        ys in 8usize..=16,
        zs in 3usize..=6,
        ts in 3usize..=6,
        rz in 1usize..=3,
        rt in 1usize..=3,
        ez in 0usize..=3,
        et in 0usize..=3,
        budget_slices in 0usize..=6,
    ) {
        let grid = geometry(xs, ys, zs, ts, (3, 3, rz, rt), (4, 4, ez, et));
        let src = CountingSource::new(grid.data_dims());
        let slice_bytes = xs * ys * 2;
        let budget = budget_slices * slice_bytes;
        let plan = ReusePlan::new(&grid, |_| true);
        let stats = replay_reader(&grid, &src, |_| true, budget)?;
        prop_assert!(stats.retained_high_water() as usize <= budget);
        let reads = src.total_reads.load(Ordering::Relaxed);
        prop_assert!(reads >= plan.distinct_slices());
        prop_assert!(reads <= plan.total_requests());
    }
}
