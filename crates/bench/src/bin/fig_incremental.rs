//! Beyond-the-paper optimization: the incremental sliding-window scan
//! (haralick::window) applied to the HMP implementation at cluster scale.
//! The per-placement co-occurrence work drops from W·|D| to ~2·W/Wx·|D|.

fn main() {
    let s = pipeline::experiments::fig_incremental(&bench::model());
    bench::print_table(
        "Incremental window optimization — HMP implementation (seconds)",
        "HMP nodes",
        &s,
    );
    bench::write_outputs(
        "fig_incremental",
        &s,
        "Incremental sliding-window optimization (HMP)",
        "HMP nodes",
        "execution time (s)",
    );
}
