//! Figure 8: co-locating HCC and HPC on the same nodes ("All Overlap")
//! vs dedicating nodes ("No Overlap") vs the combined HMP filter.
//!
//! Paper shape: Overlap wins — co-location removes the HCC->HPC transfer
//! and doubles the copy count, outweighing the shared CPU.

fn main() {
    let s = pipeline::experiments::fig8(&bench::model());
    bench::print_table(
        "Figure 8 — co-location study (seconds)",
        "texture nodes",
        &s,
    );
    bench::write_outputs(
        "fig8",
        &s,
        "Figure 8 - co-location study",
        "texture nodes",
        "execution time (s)",
    );
}
