//! Beyond-the-paper scaling study: split implementation on 2-64 homogeneous
//! texture nodes. HCC busy time keeps falling ~1/n while the fixed
//! stitch/I-O services flatten the end-to-end curve — the scalability limit
//! the paper's §5.2 predicts when it calls the IIC a bottleneck filter.

fn main() {
    let s = pipeline::experiments::scaling_limits(&bench::model());
    bench::print_table(
        "Scaling limits — split (sparse) on a homogeneous cluster (seconds)",
        "texture nodes",
        &s,
    );
    bench::write_outputs(
        "fig_scaling_limits",
        &s,
        "Scaling limits (split, sparse)",
        "texture nodes",
        "seconds",
    );
}
