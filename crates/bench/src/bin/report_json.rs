//! Exports `BENCH_run_report.json`: a measured [`datacutter::RunReport`]
//! from a live threaded run of the RFR→IIC→HMP→USO graph over a synthetic
//! distributed dataset — the busy / blocked-send / blocked-recv split per
//! filter copy that paper Figure 9 plots, taken from real channel waits
//! instead of the analytic cost model the `fig9` binary uses.
//!
//! ```sh
//! cargo run --release -p bench --bin report_json
//! ```

use datacutter::{RunReport, SchedulePolicy};
use haralick::raster::Representation;
use mri::store::write_distributed;
use mri::synth::{generate, SynthConfig};
use pipeline::config::AppConfig;
use pipeline::graphs::{Copies, HmpGraph};
use pipeline::run::run_threaded_outcome;
use std::sync::Arc;

fn main() {
    let cfg = Arc::new(AppConfig::test_scale(Representation::Full));
    let base = std::env::temp_dir().join(format!("h4d_report_json_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let data = base.join("data");
    let out = base.join("out");
    std::fs::create_dir_all(&out).unwrap_or_else(|e| panic!("mkdir {}: {e}", out.display()));

    let raw = generate(&SynthConfig {
        dims: cfg.dims,
        ..SynthConfig::test_scale(7)
    });
    write_distributed(&raw, &data, "report", cfg.storage_nodes).expect("write dataset");

    let spec = HmpGraph {
        rfr: Copies::Count(2),
        iic: Copies::Count(2),
        hmp: Copies::Count(2),
        uso: Copies::Count(1),
        texture_policy: SchedulePolicy::DemandDriven,
    }
    .build();

    let outcome = run_threaded_outcome(&spec, &cfg, &data, &out)
        .unwrap_or_else(|e| panic!("threaded run failed: {e}"));
    let report = RunReport::new(&spec, &outcome);
    if let Err(msg) = report.check() {
        panic!("run report failed its invariant check: {msg}");
    }

    println!("per-filter wall split (seconds, summed over copies):");
    println!(
        "{:>6} {:>10} {:>14} {:>14}",
        "filter", "busy", "blocked_send", "blocked_recv"
    );
    for f in &spec.filters {
        let copies = report.copies_of(&f.name);
        let busy: f64 = copies.iter().map(|c| c.busy_s).sum();
        let bs: f64 = copies.iter().map(|c| c.blocked_send_s).sum();
        let br: f64 = copies.iter().map(|c| c.blocked_recv_s).sum();
        println!("{:>6} {busy:>10.4} {bs:>14.4} {br:>14.4}", f.name);
    }

    let path = "BENCH_run_report.json";
    std::fs::write(path, report.to_json_pretty()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");

    let _ = std::fs::remove_dir_all(&base);
}
