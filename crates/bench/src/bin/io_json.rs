//! Exports `BENCH_io.json`: disk traffic and chunk-delivery latency of the
//! reader's naive per-request subrect path versus the overlap-aware slice
//! cache, at the paper-default analysis window (10x10x3x3 ROI) over a
//! disk-resident distributed dataset.
//!
//! Both passes replay the RFR filters' exact emission order — chunk grid
//! order, `t` outer, `z` inner, each storage node reading only the slices
//! it owns — so the byte counts are the counts the pipeline itself incurs.
//!
//! ```sh
//! cargo run --release -p bench --bin io_json
//! ```

use haralick::roi::RoiShape;
use haralick::volume::Dims4;
use mri::chunks::ChunkGrid;
use mri::store::{write_distributed, DistributedDataset, SliceKey};
use mri::synth::{generate, SynthConfig};
use mri::{crop_subrect, IoStats, ReusePlan, SliceCache, SliceSource};
use std::sync::Arc;
use std::time::Instant;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Naive pass for one storage node: every piece is a fresh subrect read,
/// halos re-read once per consuming chunk. Returns (bytes read, per-chunk
/// delivery seconds).
fn naive_pass(ds: &DistributedDataset, grid: &ChunkGrid, node: usize) -> (u64, Vec<f64>) {
    let mut bytes = 0u64;
    let mut latencies = Vec::with_capacity(grid.len());
    for chunk in grid.chunks() {
        let r = chunk.input;
        let t0 = Instant::now();
        for t in r.origin.t..r.end().t {
            for z in r.origin.z..r.end().z {
                let key = SliceKey { t, z };
                if ds.node_of(key) != Some(node) {
                    continue;
                }
                let piece = ds
                    .read_subrect(key, r.origin.x, r.origin.y, r.size.x, r.size.y)
                    .expect("naive subrect read");
                bytes += piece.len() as u64 * 2;
                std::hint::black_box(&piece);
            }
        }
        latencies.push(t0.elapsed().as_secs_f64());
    }
    (bytes, latencies)
}

/// Cached pass for one storage node: full slices decoded once, retained
/// until their last consuming chunk, pieces cropped in memory.
fn cached_pass(
    ds: &DistributedDataset,
    grid: &ChunkGrid,
    node: usize,
    budget: usize,
) -> (Arc<IoStats>, Vec<f64>) {
    let plan = ReusePlan::new(grid, |key| ds.node_of(key) == Some(node));
    let stats = Arc::new(IoStats::default());
    let cache = SliceCache::new(ds, plan, budget, stats.clone());
    let (slice_x, _) = ds.slice_dims();
    let mut latencies = Vec::with_capacity(grid.len());
    let mut piece = Vec::new();
    for (seq, chunk) in grid.chunks().enumerate() {
        let r = chunk.input;
        let t0 = Instant::now();
        for &key in cache.plan().keys_for(seq) {
            let slice = cache.get(key).expect("cached slice read");
            crop_subrect(
                &slice, slice_x, r.origin.x, r.origin.y, r.size.x, r.size.y, &mut piece,
            );
            std::hint::black_box(&piece);
        }
        cache.advance(seq);
        latencies.push(t0.elapsed().as_secs_f64());
    }
    (stats, latencies)
}

fn main() {
    let dims = Dims4::new(96, 96, 12, 12);
    let roi = RoiShape::from_lengths(10, 10, 3, 3);
    let chunk = Dims4::new(48, 48, 6, 6);
    let nodes = 2usize;
    let budget = 64usize << 20;

    let base = std::env::temp_dir().join(format!("h4d_bench_io_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let raw = generate(&SynthConfig {
        dims,
        ..SynthConfig::test_scale(42)
    });
    write_distributed(&raw, &base, "bench_io", nodes).expect("write dataset");
    let ds = DistributedDataset::open(&base).expect("open dataset");
    let grid = ChunkGrid::new(dims, roi, chunk);
    let dataset_bytes = dims.len() as u64 * 2;

    let mut naive_bytes = 0u64;
    let mut naive_lat = Vec::new();
    for node in 0..nodes {
        let (b, lat) = naive_pass(&ds, &grid, node);
        naive_bytes += b;
        naive_lat.extend(lat);
    }

    let mut cached_bytes = 0u64;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut cached_lat = Vec::new();
    for node in 0..nodes {
        let (stats, lat) = cached_pass(&ds, &grid, node, budget);
        cached_bytes += stats.bytes_read();
        hits += stats.cache_hits();
        misses += stats.cache_misses();
        cached_lat.extend(lat);
    }

    let reduction = naive_bytes as f64 / cached_bytes as f64;
    let hit_rate = hits as f64 / (hits + misses) as f64;
    let naive_ms = median(naive_lat) * 1e3;
    let cached_ms = median(cached_lat) * 1e3;
    println!(
        "naive {naive_bytes} B, cached {cached_bytes} B ({reduction:.2}x), \
         hit rate {hit_rate:.3}, chunk median {naive_ms:.3} ms -> {cached_ms:.3} ms"
    );

    let out = serde_json::json!({
        "config": {
            "dims": [dims.x, dims.y, dims.z, dims.t],
            "roi": [10, 10, 3, 3],
            "chunk": [chunk.x, chunk.y, chunk.z, chunk.t],
            "storage_nodes": nodes,
            "chunks": grid.len(),
            "cache_budget_bytes": budget,
        },
        "dataset_bytes": dataset_bytes,
        "naive_bytes_read": naive_bytes,
        "cached_bytes_read": cached_bytes,
        "bytes_read_reduction": reduction,
        "cache_hit_rate": hit_rate,
        "naive_chunk_median_ms": naive_ms,
        "cached_chunk_median_ms": cached_ms,
    });
    let path = "BENCH_io.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&out).expect("serializable") + "\n",
    )
    .unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
    let _ = std::fs::remove_dir_all(&base);
}
