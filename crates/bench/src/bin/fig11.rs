//! Figure 11: round-robin vs demand-driven scheduling of chunk buffers to
//! HCC copies spread over XEON and OPTERON.
//!
//! Paper shape: demand-driven wins; the faster OPTERON HCC copies receive
//! more packets, which also keeps more HCC->HPC traffic local to OPTERON.

use datacutter::SchedulePolicy;

fn main() {
    let model = bench::model();
    let s = pipeline::experiments::fig11(&model);
    bench::print_table(
        "Figure 11 — buffer scheduling policy (seconds; x: 0 = RR, 1 = DD)",
        "policy",
        &s,
    );
    // The per-cluster skew behind the result.
    for (name, policy) in [
        ("round robin", SchedulePolicy::RoundRobin),
        ("demand driven", SchedulePolicy::DemandDriven),
    ] {
        let run = pipeline::experiments::run_fig11(&model, policy);
        println!(
            "{name:>14}: XEON HCC buffers = {:>5}, OPTERON HCC buffers = {:>5}",
            run.xeon_buffers, run.opteron_buffers
        );
    }
    bench::write_outputs(
        "fig11",
        &s,
        "Figure 11 - buffer scheduling policy",
        "policy (0=RR, 1=DD)",
        "execution time (s)",
    );
}
