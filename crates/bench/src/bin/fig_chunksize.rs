//! §5.1 chunk-size ablation: sweeping the in-plane IIC-to-TEXTURE chunk
//! edge. Small chunks re-transmit the ROI halo many times; large chunks
//! distribute too coarsely and starve texture filters.

fn main() {
    let s = pipeline::experiments::fig_chunksize(&bench::model());
    bench::print_table(
        "Chunk-size ablation at 16 texture nodes (seconds / Mvoxels)",
        "chunk edge",
        &s,
    );
    bench::write_outputs(
        "fig_chunksize",
        &s,
        "Chunk-size ablation",
        "chunk edge",
        "seconds / Mvoxels",
    );
}
