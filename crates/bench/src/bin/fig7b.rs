//! Figure 7(b): the split HCC+HPC implementation with full vs sparse
//! matrix transmission, 1-16 texture nodes (4:1 HCC:HPC split) on PIII.
//!
//! Paper shape: sparse beats full — transmitting dense matrices between
//! HCC and HPC swamps Fast Ethernet, sparse slashes the traffic.

fn main() {
    let s = pipeline::experiments::fig7b(&bench::model());
    bench::print_table(
        "Figure 7(b) — split HCC+HPC: full vs sparse (seconds)",
        "texture nodes",
        &s,
    );
    bench::write_outputs(
        "fig7b",
        &s,
        "Figure 7(b) - split HCC+HPC: full vs sparse",
        "texture nodes",
        "execution time (s)",
    );
}
