//! Ablation: which modeled mechanisms produce the co-location (Figure 8)
//! result? Re-runs the 16-node All-Overlap configuration with synchronous
//! sends or bounded stream buffers idealized away.

fn main() {
    let s = pipeline::experiments::ablate_mechanisms(&bench::model());
    bench::print_table(
        "Mechanism ablation — split (Overlap, sparse) at 16 nodes (seconds)",
        "case",
        &s,
    );
    println!("case 0 = full model, 1 = sends never block, 2 = infinite stream buffers");
    bench::write_outputs(
        "fig_mechanisms",
        &s,
        "Mechanism ablation",
        "case",
        "seconds",
    );
}
