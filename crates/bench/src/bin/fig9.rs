//! Figure 9: per-filter processing time of the split implementation
//! (dedicated nodes) as texture nodes grow.
//!
//! Paper shape: RFR and USO negligible; HCC and HPC busy time falls with
//! more nodes; IIC stays constant and eventually bounds scalability
//! (the paper's motivation for multiple explicit IIC copies — see the
//! fig_iic harness).

fn main() {
    let s = pipeline::experiments::fig9(&bench::model());
    bench::print_table(
        "Figure 9 — per-filter busy time, split implementation (seconds)",
        "texture nodes",
        &s,
    );
    bench::write_outputs(
        "fig9",
        &s,
        "Figure 9 - per-filter busy time",
        "texture nodes",
        "busy time (s)",
    );
}
