//! §5.2 closing experiment: multiple explicit IIC copies relieve the
//! stitch bottleneck — per-copy IIC busy time drops near-linearly.

fn main() {
    let s = pipeline::experiments::fig_iic(&bench::model());
    bench::print_table(
        "IIC replication — per-copy busy time and execution time (seconds)",
        "IIC copies",
        &s,
    );
    bench::write_outputs("fig_iic", &s, "IIC replication", "IIC copies", "seconds");
}
