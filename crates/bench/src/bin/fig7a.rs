//! Figure 7(a): the HMP implementation with full vs sparse co-occurrence
//! matrix representation, 1-16 HMP nodes on the PIII cluster.
//!
//! Paper shape: full beats sparse at every node count (no communication to
//! save inside one filter; sparse storage only adds overhead), and both
//! scale down with more nodes.

fn main() {
    let s = pipeline::experiments::fig7a(&bench::model());
    bench::print_table(
        "Figure 7(a) — HMP implementation: full vs sparse (seconds)",
        "HMP nodes",
        &s,
    );
    bench::write_outputs(
        "fig7a",
        &s,
        "Figure 7(a) - HMP: full vs sparse",
        "HMP nodes",
        "execution time (s)",
    );
}
