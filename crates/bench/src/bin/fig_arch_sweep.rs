//! §5.3 future work: the implementation choice as a function of the
//! inter-cluster bandwidth — where does the HMP-vs-split crossover sit?

fn main() {
    let model = bench::model();
    let s = pipeline::experiments::architecture_sweep(&model);
    bench::print_table(
        "Architecture sweep — Figure 10 comparison vs inter-cluster bandwidth (seconds)",
        "Mbit/s",
        &s,
    );
    bench::write_outputs(
        "fig_arch_sweep",
        &s,
        "Architecture sweep - inter-cluster bandwidth",
        "Mbit/s",
        "execution time (s)",
    );

    let b = pipeline::experiments::buffer_depth_sweep(&model);
    bench::print_table(
        "Stream buffer depth sweep — split (PIII+XEON) (seconds)",
        "buffers",
        &b,
    );
    bench::write_outputs(
        "fig_buffer_depth",
        &b,
        "Stream buffer depth sweep",
        "buffers per queue",
        "execution time (s)",
    );
}
