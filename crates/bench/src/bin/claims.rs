//! Reproduces the paper's in-text measured claims (§4.4.1, §5.1–5.2):
//!
//! * co-occurrence matrices on a typical requantized MRI workload have on
//!   the order of ~10 non-zero entries of 1024 (~1% fill);
//! * the zero-skip optimization processes the dataset in a fraction of the
//!   naive time (paper: "one-fourth the time");
//! * the HCC (co-occurrence) stage is ~4–5x more expensive than the HPC
//!   (parameter) stage, justifying the paper's 4:1 node split;
//! * sparse transmission shrinks HCC→HPC traffic by orders of magnitude.
//!
//! Also prints the freshly measured calibration constants so the committed
//! snapshot in `cluster::calibrated_defaults` can be audited or refreshed.
//!
//! Run with `cargo run --release -p bench --bin claims`.

use cluster::calibrate::{calibrate, PIII_SLOWDOWN};
use haralick::raster::Representation;
use haralick::sparse::SparseCoMatrix;

fn main() {
    let samples = 400;
    println!("== calibration: real kernels, {samples} paper-config ROIs ==");
    let c = calibrate(42, samples);
    let m = &c.model;
    println!("(all model constants at PIII reference speed = host x {PIII_SLOWDOWN})");
    println!(
        "coocc_s_per_voxel_dir      = {:.3e}",
        m.coocc_s_per_voxel_dir
    );
    println!(
        "coocc_sparse_s_per_vox_dir = {:.3e}",
        m.coocc_sparse_s_per_voxel_dir
    );
    println!(
        "coocc_slide_s_per_vox_dir  = {:.3e}",
        m.coocc_slide_s_per_voxel_dir
    );
    println!(
        "feat_full_s_per_entry      = {:.3e}",
        m.feat_full_s_per_entry
    );
    println!(
        "feat_naive_s_per_entry     = {:.3e}",
        m.feat_naive_s_per_entry
    );
    println!(
        "feat_sparse_s_per_entry    = {:.3e}",
        m.feat_sparse_s_per_entry
    );
    println!("feat_base_s                = {:.3e}", m.feat_base_s);
    println!(
        "sparse_convert_s_per_entry = {:.3e}",
        m.sparse_convert_s_per_entry
    );
    println!("stitch_s_per_byte          = {:.3e}", m.stitch_s_per_byte);
    println!("write_s_per_byte           = {:.3e}", m.write_s_per_byte);
    println!("mean_nnz                   = {:.2}", m.mean_nnz);
    println!();

    println!("== paper claim: sparsity ==");
    let fill = m.mean_nnz / (32.0 * 33.0 / 2.0);
    println!(
        "mean non-zero entries per 32x32 matrix: {:.1} of 528 unique ({:.2}% fill; paper: 10.7, ~1%)",
        m.mean_nnz,
        fill * 100.0
    );
    println!();

    println!("== paper claim: zero-skip optimization ==");
    println!(
        "naive / checked dense feature pass: {:.2}x (paper: ~4x end-to-end)",
        c.zero_skip_speedup
    );
    println!();

    println!("== paper claim: HCC vs HPC cost ratio ==");
    let roi_voxels = 10 * 10 * 3 * 3;
    let ndirs = 1; // one displacement per matrix (paper §3)
    let hcc_full = m.hcc_cost(1, roi_voxels, ndirs, 32, Representation::Full);
    let hpc_full = m.features_cost(1, 32, Representation::Full);
    let hcc_sparse = m.hcc_cost(1, roi_voxels, ndirs, 32, Representation::Sparse);
    let hpc_sparse = m.features_cost(1, 32, Representation::Sparse);
    println!(
        "full representation:   HCC/HPC = {:.1} (paper: ~4-5)",
        hcc_full / hpc_full
    );
    println!(
        "sparse representation: HCC/HPC = {:.1}",
        hcc_sparse / hpc_sparse
    );
    println!();

    println!("== paper claim: HMP full vs sparse (Fig 7a direction) ==");
    let hmp_full = m.hmp_cost(1, roi_voxels, ndirs, 32, Representation::Full);
    let hmp_sparse = m.hmp_cost(1, roi_voxels, ndirs, 32, Representation::SparseAccum);
    println!(
        "per-ROI HMP cost: full {:.1} us, sparse-storage {:.1} us ({:+.0}% — paper: sparse worse)",
        hmp_full * 1e6,
        hmp_sparse * 1e6,
        (hmp_sparse / hmp_full - 1.0) * 100.0
    );
    println!();

    println!("== paper claim: sparse transmission volume ==");
    let dense_bytes = SparseCoMatrix::dense_wire_size(32);
    let sparse_bytes = SparseCoMatrix::wire_size_for(m.mean_nnz.ceil() as usize);
    println!(
        "per-matrix wire size: dense {dense_bytes} B, sparse {sparse_bytes} B ({:.0}x reduction)",
        dense_bytes as f64 / sparse_bytes as f64
    );
}
