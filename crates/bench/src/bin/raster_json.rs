//! Exports `BENCH_raster.json`: median wall-clock nanoseconds per ROI
//! placement for every scan-engine tier at the paper-default analysis
//! configuration — 10x10x3x3 ROI, all 40 unique distance-1 4D directions,
//! `Ng = 256`, the paper's four texture parameters.
//!
//! The volume is a deterministic MRI-like phantom: a low-frequency 4D field
//! plus mild acquisition noise, tuned so a representative window's
//! co-occurrence matrix is ~99% zeros — the sparsity the paper reports for
//! real DCE-MRI studies and the regime in which the dirty-cell incremental
//! engine is designed to win. The measured fill is recorded in the output
//! so the regime is auditable, alongside `speedup_vs_incremental` ratios,
//! the fused tier's cache-tile height, and one FNV-1a checksum of the
//! feature maps per tier (every tier must produce the identical hash — CI
//! asserts it).
//!
//! Two beyond-the-paper sections ride along:
//!
//! * `sparse_engines`/`sparse_checksums` — the same workload scanned under
//!   `Representation::Sparse`, where the fused tiers now accumulate the
//!   sparse window natively instead of downgrading to a per-placement
//!   rebuild. CI gates the sparse-fused tier at no worse than the dense
//!   incremental tier and requires all sparse checksums identical.
//! * `t_slide` — a streaming-sweep geometry (a t-deep volume scanned by a
//!   t-deep ROI, so each (x,y,z) column yields a long run of t-placements)
//!   timed on the fused tier with the t-slab slide forced off and on. CI
//!   gates the slide at ≤ 0.6× the rebuild and requires equal checksums.
//!
//! ```sh
//! cargo run --release -p bench --bin raster_json
//! ```

use haralick::coocc::CoMatrix;
use haralick::direction::DirectionSet;
use haralick::features::FeatureSelection;
use haralick::raster::{scan, Representation, ScanConfig, ScanEngine, TSlidePolicy};
use haralick::roi::RoiShape;
use haralick::volume::{Dims4, LevelVolume, Point4, Region4};
use std::time::Instant;

/// Smooth MRI-like data: the co-occurrence mass concentrates near the
/// diagonal, unlike uniform random voxels (which would make every matrix
/// two-thirds dense at `Ng = 256` and measure a regime the paper never saw).
fn smooth_volume(dims: Dims4, ng: u16, seed: u32) -> LevelVolume {
    let mut state = seed;
    let data: Vec<u8> = dims
        .region()
        .points()
        .map(|p| {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let noise = ((state >> 16) % 3) as f64 - 1.0;
            let f = 40.0 * ((p.x as f64) * 0.07).sin()
                + 35.0 * ((p.y as f64) * 0.06).cos()
                + 25.0 * ((p.z as f64) * 0.15).sin()
                + 20.0 * ((p.t as f64) * 0.11).cos();
            (f64::from(ng) / 2.0 + f + noise).clamp(0.0, f64::from(ng) - 1.0) as u8
        })
        .collect();
    LevelVolume::from_raw(dims, data, ng).expect("phantom dims are consistent")
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// FNV-1a over the feature maps' f64 bit patterns — engines must agree
/// bit-for-bit, so one hex string per tier makes divergence obvious (and
/// lets CI assert identity with `jq`).
fn checksum(values: &[f64]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// Median ns/placement plus the feature-map checksum for one configuration.
fn time_scan(vol: &LevelVolume, cfg: &ScanConfig, reps: usize) -> (f64, String) {
    let placements = cfg.roi.output_dims(vol.dims()).len();
    let mut sum = String::new();
    let times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            let maps = scan(vol, cfg);
            let dt = t.elapsed().as_secs_f64();
            sum = checksum(maps.as_slice());
            std::hint::black_box(maps);
            dt * 1e9 / placements as f64
        })
        .collect();
    (median(times), sum)
}

fn main() {
    let ng = 256u16;
    let dims = Dims4::new(40, 14, 5, 5);
    let vol = smooth_volume(dims, ng, 42);
    let base = ScanConfig {
        roi: RoiShape::from_lengths(10, 10, 3, 3),
        directions: DirectionSet::all_unique_4d(1),
        selection: FeatureSelection::paper_default(),
        representation: Representation::Full,
        engine: ScanEngine::Reference,
        t_slide: TSlidePolicy::Off,
    };
    let placements = base.roi.output_dims(dims).len();

    // Sparsity of a representative window, for the record.
    let probe = CoMatrix::from_region(
        &vol,
        Region4::new(Point4::ZERO, base.roi.size()),
        &base.directions,
    );
    let cells = probe.as_slice().len();
    let nnz = probe.as_slice().iter().filter(|&&c| c != 0).count();

    let reps = 5;
    let mut engines = serde_json::Map::new();
    let mut checksums = serde_json::Map::new();
    for engine in [
        ScanEngine::Reference,
        ScanEngine::Parallel,
        ScanEngine::Incremental,
        ScanEngine::IncrementalParallel,
        ScanEngine::Fused,
        ScanEngine::FusedParallel,
    ] {
        let cfg = ScanConfig {
            engine,
            ..base.clone()
        };
        let (ns, sum) = time_scan(&vol, &cfg, reps);
        println!("{engine:?}: {ns:.0} ns/placement  [{sum}]");
        engines.insert(format!("{engine:?}"), serde_json::json!(ns.round()));
        checksums.insert(format!("{engine:?}"), serde_json::json!(sum));
    }

    let incremental_ns = engines["Incremental"].as_f64().expect("measured");
    let speedups: serde_json::Map<String, serde_json::Value> = engines
        .iter()
        .map(|(name, ns)| {
            let ratio = incremental_ns / ns.as_f64().expect("measured").max(1.0);
            (
                name.clone(),
                serde_json::json!((ratio * 100.0).round() / 100.0),
            )
        })
        .collect();

    // Sparse representation across the tiers that matter for it: the
    // parallel rebuild (the old downgrade target) versus the fused tiers'
    // native sparse accumulation. Checksums form their own identity group —
    // the zero-skip sweep order differs from the dense representations', so
    // they must agree with each other, not with `checksums` above.
    let mut sparse_engines = serde_json::Map::new();
    let mut sparse_checksums = serde_json::Map::new();
    for engine in [
        ScanEngine::Parallel,
        ScanEngine::Fused,
        ScanEngine::FusedParallel,
    ] {
        let cfg = ScanConfig {
            representation: Representation::Sparse,
            engine,
            ..base.clone()
        };
        let (ns, sum) = time_scan(&vol, &cfg, reps);
        println!("sparse {engine:?}: {ns:.0} ns/placement  [{sum}]");
        sparse_engines.insert(format!("{engine:?}"), serde_json::json!(ns.round()));
        sparse_checksums.insert(format!("{engine:?}"), serde_json::json!(sum));
    }

    // The t-slab slide on a streaming sweep: a t-deep phantom scanned by a
    // t-deep ROI, so the extent's t axis dominates and almost every
    // placement in a run is a slide (2 slabs of roi/roi_t voxels) instead
    // of a rebuild (roi voxels).
    let t_dims = Dims4::new(10, 14, 5, 44);
    let t_vol = smooth_volume(t_dims, ng, 42);
    let t_base = ScanConfig {
        roi: RoiShape::from_lengths(10, 10, 3, 5),
        engine: ScanEngine::Fused,
        ..base.clone()
    };
    let (off_ns, off_sum) = time_scan(&t_vol, &t_base, reps);
    let on_cfg = ScanConfig {
        t_slide: TSlidePolicy::On,
        ..t_base.clone()
    };
    let (on_ns, on_sum) = time_scan(&t_vol, &on_cfg, reps);
    let t_ratio = on_ns / off_ns.max(1.0);
    println!("t-slide off: {off_ns:.0} ns/placement  [{off_sum}]");
    println!("t-slide on:  {on_ns:.0} ns/placement  [{on_sum}]  (ratio {t_ratio:.2})");

    let out = serde_json::json!({
        "unit": "median_ns_per_placement",
        "config": {
            "roi": [10, 10, 3, 3],
            "directions": base.directions.len(),
            "ng": ng,
            "selection": "paper_default",
            "representation": "Full",
            "volume_dims": [dims.x, dims.y, dims.z, dims.t],
            "placements": placements,
            "reps": reps,
            "window_nnz": nnz,
            "window_cells": cells,
            "fused_tile_rows": haralick::fused::effective_tile_rows(base.roi.size()),
        },
        "engines": serde_json::Value::Object(engines),
        "speedup_vs_incremental": serde_json::Value::Object(speedups),
        "checksums": serde_json::Value::Object(checksums),
        "sparse_engines": serde_json::Value::Object(sparse_engines),
        "sparse_checksums": serde_json::Value::Object(sparse_checksums),
        "t_slide": {
            "config": {
                "volume_dims": [t_dims.x, t_dims.y, t_dims.z, t_dims.t],
                "roi": [10, 10, 3, 5],
                "engine": "Fused",
            },
            "fused_off": off_ns.round(),
            "fused_on": on_ns.round(),
            "ratio": (t_ratio * 100.0).round() / 100.0,
            "checksum_off": off_sum,
            "checksum_on": on_sum,
        },
    });
    let path = "BENCH_raster.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&out).expect("serializable") + "\n",
    )
    .unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}
