//! Exports `BENCH_transport.json`: throughput of the multi-process TCP
//! stream bridge over loopback — frames/s and bytes/s through the full
//! path a cross-node buffer takes (payload codec encode, wire framing,
//! TCP, frame decode, payload decode) — against the in-process baseline
//! the same stream would use on one node (a bounded crossbeam channel
//! moving `Arc` pointer copies).
//!
//! The gap between the two columns is the price of crossing a process
//! boundary, which is exactly what the placement decision trades against
//! in the paper's multi-node experiments.
//!
//! Two further sections probe the v2 frame path:
//!
//! * `batching` — the same frame stream written with one flush per frame
//!   (the v1 writer discipline) versus coalesced batches flushed together
//!   (the v2 discipline); `speedup` is the headline ratio CI gates on.
//! * `fanout` — one sender feeding 1, 2, 4, and 8 peers at once, small
//!   (256 B) and large (64 KiB) frames, aggregate delivered throughput.
//!
//! ```sh
//! cargo run --release -p bench --bin transport_json
//! ```

use datacutter::transport::wire::{encode_frame, read_frame, write_frame, Frame};
use datacutter::{DataBuffer, PayloadCodec};
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn payload_of(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 % 251) as u8).collect()
}

fn codec() -> PayloadCodec {
    let mut c = PayloadCodec::new();
    c.register::<Vec<u8>, _, _>(1, |v| v.clone(), |b| Ok(b.to_vec()));
    c
}

/// Seconds to push `frames` buffers of `len` payload bytes through the
/// wire protocol over a loopback TCP connection (writer thread encodes
/// and frames; this thread reads, decodes, and rebuilds the buffers).
fn tcp_run(len: usize, frames: u64) -> f64 {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let writer = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("connect loopback");
        stream.set_nodelay(true).ok();
        let mut out = BufWriter::new(stream);
        let codec = codec();
        let template = DataBuffer::new(payload_of(len), len, 0);
        for i in 0..frames {
            let (ptype, payload) = codec.encode(&template).expect("registered");
            let frame = Frame::Data {
                stream: 0,
                dest: 0,
                tag: i,
                size: len as u64,
                ptype,
                payload,
            };
            write_frame(&mut out, &frame).expect("loopback write");
        }
        out.flush().expect("flush");
    });
    let (stream, _) = listener.accept().expect("accept loopback");
    let mut input = BufReader::new(stream);
    let codec = codec();
    let t = Instant::now();
    let mut got = 0u64;
    while let Some(frame) = read_frame(&mut input).expect("loopback read") {
        let Frame::Data {
            tag,
            size,
            ptype,
            payload,
            ..
        } = frame
        else {
            panic!("unexpected frame kind");
        };
        let buf = codec
            .decode(ptype, &payload, size as usize, tag)
            .expect("decodable");
        std::hint::black_box(&buf);
        got += 1;
    }
    let dt = t.elapsed().as_secs_f64();
    writer.join().expect("writer thread");
    assert_eq!(got, frames, "frames lost on loopback");
    dt
}

fn data_frame(tag: u64, len: usize, payload: Vec<u8>) -> Frame {
    Frame::Data {
        stream: 0,
        dest: 0,
        tag,
        size: len as u64,
        ptype: 1,
        payload,
    }
}

/// Drains every frame from `stream`, returning how many arrived.
fn drain(stream: TcpStream) -> u64 {
    let mut input = BufReader::new(stream);
    let mut got = 0u64;
    while let Some(frame) = read_frame(&mut input).expect("loopback read") {
        std::hint::black_box(&frame);
        got += 1;
    }
    got
}

/// Seconds to deliver `frames` frames of `len` payload bytes with one
/// syscall flush per frame — the v1 writer discipline the batched path
/// replaced.
fn flush_per_frame_run(len: usize, frames: u64) -> f64 {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let writer = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("connect loopback");
        stream.set_nodelay(true).ok();
        let mut out = BufWriter::new(stream);
        let payload = payload_of(len);
        for i in 0..frames {
            write_frame(&mut out, &data_frame(i, len, payload.clone())).expect("loopback write");
            out.flush().expect("flush");
        }
    });
    let (stream, _) = listener.accept().expect("accept loopback");
    let t = Instant::now();
    let got = drain(stream);
    let dt = t.elapsed().as_secs_f64();
    writer.join().expect("writer thread");
    assert_eq!(got, frames, "frames lost on loopback");
    dt
}

/// How many encoded bytes a batch accumulates before one coalesced flush
/// (mirrors the writer thread's flush threshold).
const BATCH_FLUSH_BYTES: usize = 1 << 20;

/// Seconds to deliver the same frames coalesced into large flushes — the
/// v2 writer discipline.
fn batched_run(len: usize, frames: u64) -> f64 {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let writer = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect loopback");
        stream.set_nodelay(true).ok();
        let payload = payload_of(len);
        let mut batch: Vec<u8> = Vec::with_capacity(BATCH_FLUSH_BYTES + len + 64);
        for i in 0..frames {
            batch.extend_from_slice(&encode_frame(&data_frame(i, len, payload.clone())));
            if batch.len() >= BATCH_FLUSH_BYTES {
                stream.write_all(&batch).expect("loopback write");
                batch.clear();
            }
        }
        stream.write_all(&batch).expect("loopback write");
    });
    let (stream, _) = listener.accept().expect("accept loopback");
    let t = Instant::now();
    let got = drain(stream);
    let dt = t.elapsed().as_secs_f64();
    writer.join().expect("writer thread");
    assert_eq!(got, frames, "frames lost on loopback");
    dt
}

/// Seconds for one process to feed `peers` receivers `frames_per_peer`
/// frames each (batched discipline, one writer thread per peer — the
/// shape of a fan-out placement, where one node's output streams serve
/// every texture node at once).
fn fanout_run(len: usize, frames_per_peer: u64, peers: usize) -> f64 {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let receivers: Vec<_> = (0..peers)
        .map(|_| {
            let listener = listener.try_clone().expect("clone listener");
            std::thread::spawn(move || {
                let (stream, _) = listener.accept().expect("accept loopback");
                drain(stream)
            })
        })
        .collect();
    let t = Instant::now();
    let writers: Vec<_> = (0..peers)
        .map(|_| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect loopback");
                stream.set_nodelay(true).ok();
                let payload = payload_of(len);
                let mut batch: Vec<u8> = Vec::with_capacity(BATCH_FLUSH_BYTES + len + 64);
                for i in 0..frames_per_peer {
                    batch.extend_from_slice(&encode_frame(&data_frame(i, len, payload.clone())));
                    if batch.len() >= BATCH_FLUSH_BYTES {
                        stream.write_all(&batch).expect("loopback write");
                        batch.clear();
                    }
                }
                stream.write_all(&batch).expect("loopback write");
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer thread");
    }
    let mut got = 0u64;
    for r in receivers {
        got += r.join().expect("receiver thread");
    }
    let dt = t.elapsed().as_secs_f64();
    assert_eq!(
        got,
        frames_per_peer * peers as u64,
        "frames lost in fan-out"
    );
    dt
}

/// Seconds to push the same buffers through a bounded in-process channel:
/// the zero-copy `Arc` path same-node streams keep.
fn channel_run(len: usize, frames: u64) -> f64 {
    let (tx, rx) = crossbeam::channel::bounded::<DataBuffer>(64);
    let producer = std::thread::spawn(move || {
        let template = DataBuffer::new(payload_of(len), len, 0);
        for _ in 0..frames {
            tx.send(template.clone()).expect("receiver alive");
        }
    });
    let t = Instant::now();
    let mut got = 0u64;
    while let Ok(buf) = rx.recv() {
        std::hint::black_box(&buf);
        got += 1;
    }
    let dt = t.elapsed().as_secs_f64();
    producer.join().expect("producer thread");
    assert_eq!(got, frames, "buffers lost in channel");
    dt
}

fn main() {
    let reps = 5;
    let mut sizes = serde_json::Map::new();
    for &(len, frames) in &[(256usize, 40_000u64), (4096, 20_000), (65_536, 4_000)] {
        let tcp_s = median((0..reps).map(|_| tcp_run(len, frames)).collect());
        let chan_s = median((0..reps).map(|_| channel_run(len, frames)).collect());
        let bytes = len as f64 * frames as f64;
        let entry = serde_json::json!({
            "payload_bytes": len,
            "frames": frames,
            "tcp_frames_per_s": (frames as f64 / tcp_s).round(),
            "tcp_bytes_per_s": (bytes / tcp_s).round(),
            "channel_frames_per_s": (frames as f64 / chan_s).round(),
            "channel_bytes_per_s": (bytes / chan_s).round(),
            "tcp_over_channel_slowdown": tcp_s / chan_s,
        });
        println!(
            "{len:>6} B: tcp {:>12.0} B/s ({:>9.0} frames/s), channel {:>9.0} frames/s, slowdown {:.1}x",
            bytes / tcp_s,
            frames as f64 / tcp_s,
            frames as f64 / chan_s,
            tcp_s / chan_s
        );
        sizes.insert(format!("{len}"), entry);
    }
    // Batching A/B: the identical frame stream under the v1 flush-per-frame
    // discipline and the v2 coalesced discipline. Small frames are where
    // per-frame syscalls dominate; the 256 B speedup is the CI-gated
    // headline number.
    let mut batching = serde_json::Map::new();
    for &(len, frames) in &[(256usize, 40_000u64), (4096, 20_000)] {
        let per_frame_s = median(
            (0..reps)
                .map(|_| flush_per_frame_run(len, frames))
                .collect(),
        );
        let batched_s = median((0..reps).map(|_| batched_run(len, frames)).collect());
        let speedup = per_frame_s / batched_s;
        println!(
            "batch {len:>6} B: per-frame {:>9.0} frames/s, batched {:>9.0} frames/s, speedup {speedup:.1}x",
            frames as f64 / per_frame_s,
            frames as f64 / batched_s,
        );
        batching.insert(
            format!("{len}"),
            serde_json::json!({
                "payload_bytes": len,
                "frames": frames,
                "flush_per_frame_frames_per_s": (frames as f64 / per_frame_s).round(),
                "batched_frames_per_s": (frames as f64 / batched_s).round(),
                "speedup": speedup,
            }),
        );
    }

    // Fan-out sweep: one sender node feeding N peers at once, small and
    // large frames, batched discipline throughout.
    let fan_reps = 3;
    let mut fanout = serde_json::Map::new();
    for &peers in &[1usize, 2, 4, 8] {
        let mut entry = serde_json::Map::new();
        entry.insert("peers".into(), serde_json::json!(peers));
        for &(label, len, per_peer) in &[("small", 256usize, 20_000u64), ("large", 65_536, 1_000)] {
            let s = median(
                (0..fan_reps)
                    .map(|_| fanout_run(len, per_peer, peers))
                    .collect(),
            );
            let frames = per_peer * peers as u64;
            let bytes = len as f64 * frames as f64;
            println!(
                "fanout 1->{peers} {label:>5} ({len:>6} B): {:>10.0} frames/s, {:>12.0} B/s aggregate",
                frames as f64 / s,
                bytes / s,
            );
            entry.insert(
                label.to_string(),
                serde_json::json!({
                    "payload_bytes": len,
                    "frames_per_peer": per_peer,
                    "frames_per_s": (frames as f64 / s).round(),
                    "bytes_per_s": (bytes / s).round(),
                }),
            );
        }
        fanout.insert(format!("{peers}"), serde_json::Value::Object(entry));
    }

    let out = serde_json::json!({
        "unit": "loopback transport throughput vs in-process channel",
        "config": {
            "reps": reps,
            "fanout_reps": fan_reps,
            "channel_capacity": 64,
            "batch_flush_bytes": BATCH_FLUSH_BYTES,
        },
        "sizes": serde_json::Value::Object(sizes),
        "batching": serde_json::Value::Object(batching),
        "fanout": serde_json::Value::Object(fanout),
    });
    let path = "BENCH_transport.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&out).expect("serializable") + "\n",
    )
    .unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}
