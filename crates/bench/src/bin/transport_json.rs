//! Exports `BENCH_transport.json`: throughput of the multi-process TCP
//! stream bridge over loopback — frames/s and bytes/s through the full
//! path a cross-node buffer takes (payload codec encode, wire framing,
//! TCP, frame decode, payload decode) — against the in-process baseline
//! the same stream would use on one node (a bounded crossbeam channel
//! moving `Arc` pointer copies).
//!
//! The gap between the two columns is the price of crossing a process
//! boundary, which is exactly what the placement decision trades against
//! in the paper's multi-node experiments.
//!
//! ```sh
//! cargo run --release -p bench --bin transport_json
//! ```

use datacutter::transport::wire::{read_frame, write_frame, Frame};
use datacutter::{DataBuffer, PayloadCodec};
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn payload_of(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 % 251) as u8).collect()
}

fn codec() -> PayloadCodec {
    let mut c = PayloadCodec::new();
    c.register::<Vec<u8>, _, _>(1, |v| v.clone(), |b| Ok(b.to_vec()));
    c
}

/// Seconds to push `frames` buffers of `len` payload bytes through the
/// wire protocol over a loopback TCP connection (writer thread encodes
/// and frames; this thread reads, decodes, and rebuilds the buffers).
fn tcp_run(len: usize, frames: u64) -> f64 {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let writer = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("connect loopback");
        stream.set_nodelay(true).ok();
        let mut out = BufWriter::new(stream);
        let codec = codec();
        let template = DataBuffer::new(payload_of(len), len, 0);
        for i in 0..frames {
            let (ptype, payload) = codec.encode(&template).expect("registered");
            let frame = Frame::Data {
                stream: 0,
                dest: 0,
                tag: i,
                size: len as u64,
                ptype,
                payload,
            };
            write_frame(&mut out, &frame).expect("loopback write");
        }
        out.flush().expect("flush");
    });
    let (stream, _) = listener.accept().expect("accept loopback");
    let mut input = BufReader::new(stream);
    let codec = codec();
    let t = Instant::now();
    let mut got = 0u64;
    while let Some(frame) = read_frame(&mut input).expect("loopback read") {
        let Frame::Data {
            tag,
            size,
            ptype,
            payload,
            ..
        } = frame
        else {
            panic!("unexpected frame kind");
        };
        let buf = codec
            .decode(ptype, &payload, size as usize, tag)
            .expect("decodable");
        std::hint::black_box(&buf);
        got += 1;
    }
    let dt = t.elapsed().as_secs_f64();
    writer.join().expect("writer thread");
    assert_eq!(got, frames, "frames lost on loopback");
    dt
}

/// Seconds to push the same buffers through a bounded in-process channel:
/// the zero-copy `Arc` path same-node streams keep.
fn channel_run(len: usize, frames: u64) -> f64 {
    let (tx, rx) = crossbeam::channel::bounded::<DataBuffer>(64);
    let producer = std::thread::spawn(move || {
        let template = DataBuffer::new(payload_of(len), len, 0);
        for _ in 0..frames {
            tx.send(template.clone()).expect("receiver alive");
        }
    });
    let t = Instant::now();
    let mut got = 0u64;
    while let Ok(buf) = rx.recv() {
        std::hint::black_box(&buf);
        got += 1;
    }
    let dt = t.elapsed().as_secs_f64();
    producer.join().expect("producer thread");
    assert_eq!(got, frames, "buffers lost in channel");
    dt
}

fn main() {
    let reps = 5;
    let mut sizes = serde_json::Map::new();
    for &(len, frames) in &[(256usize, 40_000u64), (4096, 20_000), (65_536, 4_000)] {
        let tcp_s = median((0..reps).map(|_| tcp_run(len, frames)).collect());
        let chan_s = median((0..reps).map(|_| channel_run(len, frames)).collect());
        let bytes = len as f64 * frames as f64;
        let entry = serde_json::json!({
            "payload_bytes": len,
            "frames": frames,
            "tcp_frames_per_s": (frames as f64 / tcp_s).round(),
            "tcp_bytes_per_s": (bytes / tcp_s).round(),
            "channel_frames_per_s": (frames as f64 / chan_s).round(),
            "channel_bytes_per_s": (bytes / chan_s).round(),
            "tcp_over_channel_slowdown": tcp_s / chan_s,
        });
        println!(
            "{len:>6} B: tcp {:>12.0} B/s ({:>9.0} frames/s), channel {:>9.0} frames/s, slowdown {:.1}x",
            bytes / tcp_s,
            frames as f64 / tcp_s,
            frames as f64 / chan_s,
            tcp_s / chan_s
        );
        sizes.insert(format!("{len}"), entry);
    }
    let out = serde_json::json!({
        "unit": "loopback transport throughput vs in-process channel",
        "config": { "reps": reps, "channel_capacity": 64 },
        "sizes": serde_json::Value::Object(sizes),
    });
    let path = "BENCH_transport.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&out).expect("serializable") + "\n",
    )
    .unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}
