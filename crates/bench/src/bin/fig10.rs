//! Figure 10: heterogeneous PIII + XEON environment — HMP (23 copies, one
//! per processor) vs the split implementation (18 co-located HCC+HPC
//! pairs).
//!
//! Paper shape: the split implementation wins — better pipelining, less
//! data over the slow shared inter-cluster link, and demand-driven matrix
//! scheduling inside each cluster.

fn main() {
    let s = pipeline::experiments::fig10(&bench::model());
    bench::print_table(
        "Figure 10 — heterogeneous PIII+XEON (seconds; x = texture filter copies)",
        "copies",
        &s,
    );
    bench::write_outputs(
        "fig10",
        &s,
        "Figure 10 - heterogeneous PIII+XEON",
        "texture copies",
        "execution time (s)",
    );
}
