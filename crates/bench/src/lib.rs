//! Benchmark harness support: table/CSV rendering of experiment series.
//!
//! The `fig*` binaries in `src/bin/` regenerate every figure of the paper's
//! evaluation section; criterion micro-benchmarks live in `benches/`.

pub mod plot;

use pipeline::experiments::Series;
use std::io::Write;
use std::path::Path;

/// Prints a series as an aligned table, one row per x value and one column
/// per series label — mirroring the paper's figure axes.
pub fn print_table(title: &str, x_name: &str, s: &Series) {
    println!("== {title} ==");
    let labels = s.labels();
    print!("{x_name:>14}");
    for l in &labels {
        print!("  {l:>22}");
    }
    println!();
    for x in s.xs() {
        print!("{x:>14}");
        for l in &labels {
            match s.get(l, x) {
                Some(v) => print!("  {v:>22.2}"),
                None => print!("  {:>22}", "-"),
            }
        }
        println!();
    }
    println!();
}

/// Writes the series as CSV (`x,series,seconds`) under `results/` in the
/// working directory.
pub fn write_csv(name: &str, s: &Series) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::File::create(dir.join(format!("{name}.csv")))?;
    writeln!(f, "x,series,seconds")?;
    for p in &s.points {
        writeln!(f, "{},{},{}", p.x, p.series, p.seconds)?;
    }
    Ok(())
}

/// Writes both the CSV and an SVG rendering of a figure's series.
pub fn write_outputs(name: &str, s: &Series, title: &str, x_label: &str, y_label: &str) {
    write_csv(name, s).unwrap_or_else(|e| panic!("write results/{name}.csv: {e}"));
    plot::write_svg(
        name,
        s,
        &plot::PlotConfig {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            log_y: false,
        },
    )
    .unwrap_or_else(|e| panic!("write results/{name}.svg: {e}"));
}

/// The cost model every figure binary uses: the committed calibration
/// snapshot (deterministic across machines). Run the `claims` binary to
/// re-measure live values.
pub fn model() -> cluster::CostModel {
    cluster::calibrated_defaults::default_model()
}
