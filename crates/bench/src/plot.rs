//! Minimal SVG line-chart rendering for experiment series — every `fig*`
//! binary emits the figure it reproduces as `results/<name>.svg` alongside
//! the CSV.

use pipeline::experiments::Series;

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 460.0;
const MARGIN_L: f64 = 80.0;
const MARGIN_R: f64 = 30.0;
const MARGIN_T: f64 = 48.0;
const MARGIN_B: f64 = 64.0;

/// Series colors (colorblind-safe-ish qualitative palette).
const COLORS: [&str; 6] = [
    "#1b6ca8", "#d1495b", "#66a182", "#edae49", "#8d6b94", "#5c6b73",
];

/// Chart options.
#[derive(Debug, Clone)]
pub struct PlotConfig {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Logarithmic y axis (base 10).
    pub log_y: bool,
}

fn nice_ticks(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    if hi <= lo || !hi.is_finite() || !lo.is_finite() {
        return vec![lo];
    }
    let raw_step = (hi - lo) / n as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = mag
        * if norm < 1.5 {
            1.0
        } else if norm < 3.5 {
            2.0
        } else if norm < 7.5 {
            5.0
        } else {
            10.0
        };
    let start = (lo / step).ceil() * step;
    let mut t = Vec::new();
    let mut v = start;
    while v <= hi + step * 1e-9 {
        t.push(v);
        v += step;
    }
    t
}

fn fmt_num(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 10_000.0 || v.abs() < 0.01 {
        format!("{v:.0e}")
    } else if v.fract().abs() < 1e-9 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders the series as a standalone SVG document.
pub fn render_svg(series: &Series, cfg: &PlotConfig) -> String {
    let labels = series.labels();
    let xs = series.xs();
    assert!(!labels.is_empty() && !xs.is_empty(), "empty series");

    let x_lo = *xs.first().unwrap() as f64;
    let x_hi = *xs.last().unwrap() as f64;
    let mut y_lo = f64::INFINITY;
    let mut y_hi = f64::NEG_INFINITY;
    for p in &series.points {
        y_lo = y_lo.min(p.seconds);
        y_hi = y_hi.max(p.seconds);
    }
    let ty = |v: f64| if cfg.log_y { v.max(1e-12).log10() } else { v };
    let (py_lo, py_hi) = {
        let (a, b) = (ty(y_lo), ty(y_hi));
        if (b - a).abs() < 1e-12 {
            (a - 1.0, b + 1.0)
        } else {
            let pad = (b - a) * 0.08;
            (a - pad, b + pad)
        }
    };
    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let sx = |x: f64| {
        if x_hi > x_lo {
            MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w
        } else {
            MARGIN_L + plot_w / 2.0
        }
    };
    let sy = |y: f64| MARGIN_T + (py_hi - ty(y)) / (py_hi - py_lo) * plot_h;

    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{HEIGHT}\" \
         viewBox=\"0 0 {WIDTH} {HEIGHT}\" font-family=\"sans-serif\">\n"
    ));
    out.push_str("<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");
    out.push_str(&format!(
        "<text x=\"{}\" y=\"24\" text-anchor=\"middle\" font-size=\"16\">{}</text>\n",
        WIDTH / 2.0,
        esc(&cfg.title)
    ));

    // Axes frame.
    out.push_str(&format!(
        "<rect x=\"{MARGIN_L}\" y=\"{MARGIN_T}\" width=\"{plot_w}\" height=\"{plot_h}\" \
         fill=\"none\" stroke=\"#333\"/>\n"
    ));

    // Y ticks/gridlines.
    let yticks = if cfg.log_y {
        let mut t = Vec::new();
        let mut e = py_lo.floor() as i32;
        while (e as f64) <= py_hi {
            t.push(10f64.powi(e));
            e += 1;
        }
        t
    } else {
        nice_ticks(py_lo, py_hi, 6)
    };
    for &tick in &yticks {
        let y = sy(tick);
        if y < MARGIN_T - 1.0 || y > MARGIN_T + plot_h + 1.0 {
            continue;
        }
        out.push_str(&format!(
            "<line x1=\"{MARGIN_L}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\" \
             stroke=\"#ddd\"/>\n",
            MARGIN_L + plot_w
        ));
        out.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\" font-size=\"11\">{}</text>\n",
            MARGIN_L - 6.0,
            y + 4.0,
            fmt_num(tick)
        ));
    }

    // X ticks: the actual x values.
    for &x in &xs {
        let px = sx(x as f64);
        out.push_str(&format!(
            "<line x1=\"{px:.1}\" y1=\"{:.1}\" x2=\"{px:.1}\" y2=\"{:.1}\" stroke=\"#333\"/>\n",
            MARGIN_T + plot_h,
            MARGIN_T + plot_h + 5.0
        ));
        out.push_str(&format!(
            "<text x=\"{px:.1}\" y=\"{:.1}\" text-anchor=\"middle\" font-size=\"11\">{x}</text>\n",
            MARGIN_T + plot_h + 18.0
        ));
    }

    // Axis labels.
    out.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-size=\"13\">{}</text>\n",
        MARGIN_L + plot_w / 2.0,
        HEIGHT - 16.0,
        esc(&cfg.x_label)
    ));
    out.push_str(&format!(
        "<text x=\"20\" y=\"{}\" text-anchor=\"middle\" font-size=\"13\" \
         transform=\"rotate(-90 20 {})\">{}</text>\n",
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        esc(&cfg.y_label)
    ));

    // Series polylines + markers.
    for (si, label) in labels.iter().enumerate() {
        let color = COLORS[si % COLORS.len()];
        let pts: Vec<(f64, f64)> = xs
            .iter()
            .filter_map(|&x| series.get(label, x).map(|y| (sx(x as f64), sy(y))))
            .collect();
        if pts.len() > 1 {
            let path: Vec<String> = pts.iter().map(|(x, y)| format!("{x:.1},{y:.1}")).collect();
            out.push_str(&format!(
                "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"2\" points=\"{}\"/>\n",
                path.join(" ")
            ));
        }
        for (x, y) in &pts {
            out.push_str(&format!(
                "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"3.5\" fill=\"{color}\"/>\n"
            ));
        }
        // Legend entry.
        let ly = MARGIN_T + 10.0 + si as f64 * 18.0;
        let lx = MARGIN_L + plot_w - 180.0;
        out.push_str(&format!(
            "<line x1=\"{lx}\" y1=\"{ly}\" x2=\"{}\" y2=\"{ly}\" stroke=\"{color}\" \
             stroke-width=\"2\"/>\n",
            lx + 22.0
        ));
        out.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" font-size=\"12\">{}</text>\n",
            lx + 28.0,
            ly + 4.0,
            esc(label)
        ));
    }

    out.push_str("</svg>\n");
    out
}

/// Writes the series to `results/<name>.svg`.
pub fn write_svg(name: &str, series: &Series, cfg: &PlotConfig) -> std::io::Result<()> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{name}.svg")), render_svg(series, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::experiments::Point;

    fn sample() -> Series {
        let mut s = Series::default();
        for (label, scale) in [("alpha", 1.0), ("beta & co", 2.0)] {
            for x in [1usize, 2, 4, 8] {
                s.points.push(Point {
                    series: label.to_string(),
                    x,
                    seconds: scale * 100.0 / x as f64,
                });
            }
        }
        s
    }

    fn cfg() -> PlotConfig {
        PlotConfig {
            title: "test <chart>".into(),
            x_label: "nodes".into(),
            y_label: "seconds".into(),
            log_y: false,
        }
    }

    #[test]
    fn svg_contains_every_series_and_escapes_text() {
        let svg = render_svg(&sample(), &cfg());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2, "one line per series");
        assert_eq!(svg.matches("<circle").count(), 8, "one marker per point");
        assert!(svg.contains("beta &amp; co"), "ampersand escaped");
        assert!(svg.contains("test &lt;chart&gt;"), "angle brackets escaped");
    }

    #[test]
    fn log_scale_renders_decade_gridlines() {
        let mut s = Series::default();
        for (x, y) in [(1usize, 10.0), (2, 100.0), (4, 1000.0)] {
            s.points.push(Point {
                series: "a".into(),
                x,
                seconds: y,
            });
        }
        let svg = render_svg(
            &s,
            &PlotConfig {
                log_y: true,
                ..cfg()
            },
        );
        for decade in ["10", "100", "1000"] {
            assert!(
                svg.contains(&format!(">{decade}</text>")),
                "missing decade label {decade}"
            );
        }
    }

    #[test]
    fn single_point_series_renders_without_panicking() {
        let mut s = Series::default();
        s.points.push(Point {
            series: "only".into(),
            x: 5,
            seconds: 42.0,
        });
        let svg = render_svg(&s, &cfg());
        assert!(svg.contains("<circle"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn nice_ticks_are_round_and_cover_the_range() {
        let t = nice_ticks(0.0, 97.0, 6);
        assert!(t.len() >= 4);
        assert!(t.windows(2).all(|w| w[1] > w[0]));
        assert!(*t.first().unwrap() >= 0.0 && *t.last().unwrap() <= 97.0 + 1e-9);
    }
}
