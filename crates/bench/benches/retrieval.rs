//! Data-retrieval benchmarks: by-ROI vs by-chunk communication volume
//! (paper Figure 6) and real disk subregion reads through the distributed
//! store.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use haralick::roi::RoiShape;
use haralick::volume::Dims4;
use mri::chunks::ChunkGrid;
use mri::store::{write_distributed, DistributedDataset, SliceKey};
use mri::synth::{generate, SynthConfig};

fn bench_retrieval_volume(c: &mut Criterion) {
    let dims = Dims4::new(256, 256, 32, 32);
    let roi = RoiShape::paper_default();
    let mut g = c.benchmark_group("retrieval_volume_model");
    for edge in [16usize, 32, 64, 128] {
        let grid = ChunkGrid::new(dims, roi, Dims4::new(edge, edge, 8, 8));
        g.bench_with_input(BenchmarkId::new("by_chunk", edge), &grid, |b, gr| {
            b.iter(|| gr.retrieval_volume_by_chunk())
        });
    }
    g.finish();
}

fn bench_disk_reads(c: &mut Criterion) {
    let root = std::env::temp_dir().join(format!("h4d_bench_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let raw = generate(&SynthConfig::test_scale(42));
    write_distributed(&raw, &root, "bench", 4).unwrap();
    let ds = DistributedDataset::open(&root).unwrap();
    let key = SliceKey { t: 3, z: 2 };
    let mut g = c.benchmark_group("disk_reads");
    g.bench_function("whole_slice", |b| b.iter(|| ds.read_slice(key).unwrap()));
    g.bench_function("subrect_32x32", |b| {
        b.iter(|| ds.read_subrect(key, 8, 8, 32, 32).unwrap())
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&root);
}

criterion_group!(benches, bench_retrieval_volume, bench_disk_reads);
criterion_main!(benches);
