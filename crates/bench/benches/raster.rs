//! Raster-scan benchmarks: sequential vs rayon, and per-representation
//! end-to-end cost on a small volume.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use haralick::direction::{Direction, DirectionSet};
use haralick::features::FeatureSelection;
use haralick::raster::{
    raster_scan, raster_scan_par, scan, Representation, ScanConfig, ScanEngine, TSlidePolicy,
};
use haralick::roi::RoiShape;
use haralick::volume::{Dims4, LevelVolume};
use mri::synth::{generate, SynthConfig};

fn small_volume() -> LevelVolume {
    generate(&SynthConfig {
        dims: Dims4::new(32, 32, 6, 6),
        ..SynthConfig::test_scale(42)
    })
    .quantize_min_max(32)
}

fn cfg(repr: Representation) -> ScanConfig {
    ScanConfig {
        roi: RoiShape::from_lengths(8, 8, 3, 3),
        directions: DirectionSet::single(Direction::new(1, 1, 1, 1)),
        selection: FeatureSelection::paper_default(),
        representation: repr,
        engine: ScanEngine::default(),
        t_slide: TSlidePolicy::default(),
    }
}

fn bench_drivers(c: &mut Criterion) {
    let vol = small_volume();
    let base = cfg(Representation::Full);
    let mut g = c.benchmark_group("raster_driver");
    g.sample_size(10);
    g.bench_function("sequential", |b| b.iter(|| raster_scan(&vol, &base)));
    g.bench_function("rayon", |b| b.iter(|| raster_scan_par(&vol, &base)));
    for engine in [ScanEngine::Incremental, ScanEngine::IncrementalParallel] {
        let tier = ScanConfig {
            engine,
            ..base.clone()
        };
        g.bench_function(format!("{engine:?}"), |b| b.iter(|| scan(&vol, &tier)));
    }
    g.finish();
}

fn bench_representations(c: &mut Criterion) {
    let vol = small_volume();
    let mut g = c.benchmark_group("raster_representation");
    g.sample_size(10);
    for repr in [
        Representation::FullNaive,
        Representation::Full,
        Representation::Sparse,
        Representation::SparseAccum,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{repr:?}")),
            &cfg(repr),
            |b, scan| b.iter(|| raster_scan(&vol, scan)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_drivers, bench_representations);
criterion_main!(benches);
