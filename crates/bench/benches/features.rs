//! Haralick feature computation benchmarks: the zero-skip optimization
//! (paper: "one-fourth the time"), sparse-form evaluation, and the cost of
//! the individual feature families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use haralick::coocc::CoMatrix;
use haralick::direction::{Direction, DirectionSet};
use haralick::features::{compute_features, Feature, FeatureSelection, MatrixStats};
use haralick::roi::RoiShape;
use haralick::sparse::SparseCoMatrix;
use haralick::volume::{Point4, Region4};
use mri::synth::{generate, SynthConfig};

/// A typical workload matrix (sparse, ~12 nnz of 1024).
fn workload_matrix() -> CoMatrix {
    let vol = generate(&SynthConfig::test_scale(42)).quantize_min_max(32);
    let roi = RoiShape::paper_default();
    CoMatrix::from_region(
        &vol,
        Region4::new(Point4::new(20, 20, 2, 2), roi.size()),
        &DirectionSet::single(Direction::new(1, 1, 1, 1)),
    )
}

fn bench_zero_skip(c: &mut Criterion) {
    let m = workload_matrix();
    let sel = FeatureSelection::paper_default();
    let mut g = c.benchmark_group("feature_pass");
    g.bench_function("naive_dense", |b| {
        b.iter(|| compute_features(&m.stats_naive(), &sel))
    });
    g.bench_function("zero_skip_dense", |b| {
        b.iter(|| compute_features(&m.stats_checked(), &sel))
    });
    let s = SparseCoMatrix::from_dense(&m);
    g.bench_function("sparse_form", |b| {
        b.iter(|| compute_features(&MatrixStats::from_sparse(&s), &sel))
    });
    g.bench_function("convert_then_sparse", |b| {
        b.iter(|| {
            let s = SparseCoMatrix::from_dense(&m);
            compute_features(&MatrixStats::from_sparse(&s), &sel)
        })
    });
    g.finish();
}

fn bench_individual_features(c: &mut Criterion) {
    let m = workload_matrix();
    let stats = m.stats_checked();
    let mut g = c.benchmark_group("single_feature_finalize");
    for f in Feature::ALL {
        let sel = FeatureSelection::of(&[f]);
        g.bench_with_input(BenchmarkId::from_parameter(f.short_name()), &sel, |b, s| {
            b.iter(|| compute_features(&stats, s))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_zero_skip, bench_individual_features);
criterion_main!(benches);
