//! Co-occurrence matrix construction benchmarks: dense vs sparse-storage
//! accumulation (the paper's §4.4.1 trade-off), by ROI size and direction
//! count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use haralick::coocc::CoMatrix;
use haralick::direction::{Direction, DirectionSet};
use haralick::roi::RoiShape;
use haralick::sparse::SparseAccumulator;
use haralick::volume::{LevelVolume, Point4, Region4};
use mri::synth::{generate, SynthConfig};

fn workload_volume() -> LevelVolume {
    generate(&SynthConfig::test_scale(42)).quantize_min_max(32)
}

fn bench_accumulation(c: &mut Criterion) {
    let vol = workload_volume();
    let origin = Point4::new(20, 20, 2, 2);
    let dirs = DirectionSet::single(Direction::new(1, 1, 1, 1));
    let mut g = c.benchmark_group("coocc_accumulation");
    for (name, roi) in [
        ("roi_6x6x2x2", RoiShape::from_lengths(6, 6, 2, 2)),
        ("roi_10x10x3x3", RoiShape::paper_default()),
        ("roi_16x16x4x4", RoiShape::from_lengths(16, 16, 4, 4)),
    ] {
        let region = Region4::new(origin, roi.size());
        g.bench_with_input(BenchmarkId::new("dense", name), &region, |b, &r| {
            b.iter(|| CoMatrix::from_region(&vol, r, &dirs))
        });
        g.bench_with_input(
            BenchmarkId::new("sparse_storage", name),
            &region,
            |b, &r| b.iter(|| SparseAccumulator::from_region(&vol, r, &dirs)),
        );
    }
    g.finish();
}

fn bench_direction_count(c: &mut Criterion) {
    let vol = workload_volume();
    let roi = RoiShape::paper_default();
    let region = Region4::new(Point4::new(20, 20, 2, 2), roi.size());
    let mut g = c.benchmark_group("coocc_directions");
    for (name, dirs) in [
        ("single", DirectionSet::single(Direction::new(1, 1, 1, 1))),
        ("axial4", DirectionSet::axial(4, 1)),
        ("paper8", DirectionSet::paper_4d(1)),
        ("all40", DirectionSet::all_unique_4d(1)),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &dirs, |b, d| {
            b.iter(|| CoMatrix::from_region(&vol, region, d))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_accumulation, bench_direction_count);
criterion_main!(benches);
