//! Buffer scheduling policies for streams feeding replicated filters
//! (paper §4.1).

use serde::{Deserialize, Serialize};

/// How buffers written to a stream are distributed among the consumer
/// filter's copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulePolicy {
    /// Transparent copies, round-robin: "the scheduler assigns data to each
    /// transparent filter in turn. Thus, each transparent filter receives
    /// roughly the same amount of data to process."
    RoundRobin,
    /// Transparent copies, demand-driven: "the DataCutter scheduler assigns
    /// the distribution based on the buffer consumption rate of the
    /// transparent filter copies", i.e. buffers go "to the transparent
    /// filter copies that can process them the fastest."
    DemandDriven,
    /// Explicit copies with deterministic routing: copy `tag % n_copies`
    /// receives the buffer. Used where "assignment of data chunks to filter
    /// copies in a user-defined way is required" — e.g. pieces of the same
    /// RFR-to-IIC chunk must all reach the same IIC copy.
    ByTagModulo,
    /// Every consumer copy receives (a pointer to) every buffer.
    Broadcast,
}

impl SchedulePolicy {
    /// Whether the policy needs one private queue per consumer copy
    /// (`true`) or a single shared queue all copies pull from (`false`).
    ///
    /// Demand-driven is realized as a shared queue: whichever copy is free
    /// takes the next buffer, which is exactly "send to whoever consumes
    /// fastest" without a central scheduler.
    pub const fn uses_private_queues(self) -> bool {
        !matches!(self, SchedulePolicy::DemandDriven)
    }

    /// For private-queue policies: which consumer copies receive a buffer
    /// with tag `tag`, given the producer's running sequence number `seq`
    /// on this stream.
    pub fn route(self, seq: u64, tag: u64, n_copies: usize) -> Route {
        match self {
            SchedulePolicy::RoundRobin => Route::One((seq % n_copies as u64) as usize),
            SchedulePolicy::ByTagModulo => Route::One((tag % n_copies as u64) as usize),
            SchedulePolicy::Broadcast => Route::All,
            SchedulePolicy::DemandDriven => Route::Shared,
        }
    }
}

/// Routing decision for one buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Deliver to the given consumer copy.
    One(usize),
    /// Deliver to every consumer copy.
    All,
    /// Push onto the shared demand-driven queue.
    Shared,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let p = SchedulePolicy::RoundRobin;
        let got: Vec<Route> = (0..6).map(|s| p.route(s, 999, 3)).collect();
        assert_eq!(
            got,
            vec![
                Route::One(0),
                Route::One(1),
                Route::One(2),
                Route::One(0),
                Route::One(1),
                Route::One(2)
            ]
        );
    }

    #[test]
    fn tag_modulo_ignores_sequence() {
        let p = SchedulePolicy::ByTagModulo;
        assert_eq!(p.route(0, 7, 4), Route::One(3));
        assert_eq!(p.route(99, 7, 4), Route::One(3));
        assert_eq!(p.route(0, 8, 4), Route::One(0));
    }

    #[test]
    fn broadcast_and_demand() {
        assert_eq!(SchedulePolicy::Broadcast.route(0, 0, 2), Route::All);
        assert_eq!(SchedulePolicy::DemandDriven.route(0, 0, 2), Route::Shared);
        assert!(!SchedulePolicy::DemandDriven.uses_private_queues());
        assert!(SchedulePolicy::RoundRobin.uses_private_queues());
    }
}
