//! Multi-process TCP stream transport.
//!
//! Splits a placed filter graph across cooperating OS processes: each
//! process runs [`run_node`] with the same spec, a node id, and the full
//! address list, and every cross-node stream is bridged over TCP with a
//! length-prefixed frame protocol — same-node streams keep the engine's
//! zero-copy `Arc` path. Built on `std::net` only.
//!
//! * [`wire`] — the frame codec: `Hello` / `Data` / `Eos` / `Error` /
//!   `Credit` frames, typed decode errors, optional per-frame payload
//!   checksums and LZ compression (negotiated in the handshake), and the
//!   spec digest both ends must agree on.
//! * [`codec`] — the [`PayloadCodec`] registry translating opaque
//!   [`crate::DataBuffer`] payloads to and from bytes.
//! * [`node`] — mesh handshake with feature negotiation, per-peer
//!   writer/reader/injector threads (batched vectored writes, per-route
//!   credit flow control), fault injection for chaos tests, and the
//!   distributed root-cause merge.

pub mod codec;
pub mod node;
pub mod wire;

pub use codec::PayloadCodec;
pub use node::{
    free_loopback_addrs, reserve_loopback_listeners, run_node, NodeConfig, TransportFault,
    TransportFaultKind,
};
pub use wire::{
    spec_digest, Frame, WireConfig, WireError, FEATURE_CHECKSUM, FEATURE_COMPRESS,
    MAX_CREDIT_GRANT, MAX_PAYLOAD_LEN, SHARED_QUEUE, SUPPORTED_FEATURES, WIRE_VERSION,
};
