//! Multi-process TCP stream transport.
//!
//! Splits a placed filter graph across cooperating OS processes: each
//! process runs [`run_node`] with the same spec, a node id, and the full
//! address list, and every cross-node stream is bridged over TCP with a
//! length-prefixed frame protocol — same-node streams keep the engine's
//! zero-copy `Arc` path. Built on `std::net` only.
//!
//! * [`wire`] — the frame codec: `Hello` / `Data` / `Eos` / `Error`
//!   frames, typed decode errors, and the spec digest both ends of the
//!   handshake must agree on.
//! * [`codec`] — the [`PayloadCodec`] registry translating opaque
//!   [`crate::DataBuffer`] payloads to and from bytes.
//! * [`node`] — mesh handshake, per-peer writer/reader threads, fault
//!   injection for chaos tests, and the distributed root-cause merge.

pub mod codec;
pub mod node;
pub mod wire;

pub use codec::PayloadCodec;
pub use node::{free_loopback_addrs, run_node, NodeConfig, TransportFault, TransportFaultKind};
pub use wire::{spec_digest, Frame, WireError, MAX_PAYLOAD_LEN, SHARED_QUEUE, WIRE_VERSION};
