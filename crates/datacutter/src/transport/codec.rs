//! The `WirePayload` registry: how opaque [`DataBuffer`] payloads cross a
//! process boundary.
//!
//! In-process, a buffer's payload is an `Arc<dyn Any>` handed around by
//! pointer copy. On a cross-node stream the transport must serialize it, so
//! the application registers, per concrete payload type, a numeric type tag
//! plus an encode and a decode function. The registry is symmetric by
//! construction — both sides build it from the same registration calls — and
//! a buffer whose type was never registered fails the send with a typed
//! error instead of panicking, naming the offending stream.
//!
//! Encoders receive the payload by reference and return the encoded bytes;
//! decoders parse bytes back into the concrete type (returning a
//! descriptive `Err(String)` on any inconsistency) and the registry rebuilds
//! the [`DataBuffer`] with the producer-declared size and tag, so byte
//! accounting and tag routing are bit-identical on both sides.

use crate::buffer::DataBuffer;
use crate::transport::wire::WireError;
use std::any::{Any, TypeId};
use std::collections::HashMap;

type EncodeFn = Box<dyn Fn(&DataBuffer) -> Option<Vec<u8>> + Send + Sync>;
type DecodeFn = Box<dyn Fn(&[u8], usize, u64) -> Result<DataBuffer, String> + Send + Sync>;

/// Registry mapping concrete payload types to wire type tags and back.
#[derive(Default)]
pub struct PayloadCodec {
    encoders: HashMap<TypeId, (u16, &'static str, EncodeFn)>,
    decoders: HashMap<u16, DecodeFn>,
}

impl PayloadCodec {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the codec for payload type `T` under `tag`.
    ///
    /// # Panics
    /// If `tag` or `T` is already registered — duplicate registrations are
    /// a programming error that would silently corrupt routing.
    pub fn register<T, E, D>(&mut self, tag: u16, encode: E, decode: D)
    where
        T: Any + Send + Sync,
        E: Fn(&T) -> Vec<u8> + Send + Sync + 'static,
        D: Fn(&[u8]) -> Result<T, String> + Send + Sync + 'static,
    {
        let type_name = std::any::type_name::<T>();
        assert!(
            !self.decoders.contains_key(&tag),
            "payload type tag {tag} registered twice"
        );
        let prev = self.encoders.insert(
            TypeId::of::<T>(),
            (
                tag,
                type_name,
                Box::new(move |buf| buf.downcast::<T>().map(&encode)),
            ),
        );
        assert!(prev.is_none(), "payload type {type_name} registered twice");
        self.decoders.insert(
            tag,
            Box::new(move |bytes, size, buf_tag| {
                decode(bytes).map(|v| DataBuffer::new(v, size, buf_tag))
            }),
        );
    }

    /// Encodes a buffer's payload, returning its type tag and bytes.
    pub fn encode(&self, buf: &DataBuffer) -> Result<(u16, Vec<u8>), WireError> {
        let Some((tag, name, enc)) = self.encoders.get(&buf.payload_type_id()) else {
            return Err(WireError::BadPayload(format!(
                "no wire codec registered for the payload of buffer tag {}",
                buf.tag()
            )));
        };
        match enc(buf) {
            Some(bytes) => Ok((*tag, bytes)),
            None => Err(WireError::BadPayload(format!(
                "payload failed to downcast to registered type {name}"
            ))),
        }
    }

    /// Decodes payload bytes of type `ptype` back into a buffer carrying
    /// the producer-declared `size` and routing `tag`.
    pub fn decode(
        &self,
        ptype: u16,
        bytes: &[u8],
        size: usize,
        tag: u64,
    ) -> Result<DataBuffer, WireError> {
        let dec = self
            .decoders
            .get(&ptype)
            .ok_or(WireError::UnknownPayloadType(ptype))?;
        dec(bytes, size, tag).map_err(WireError::BadPayload)
    }

    /// Number of registered payload types.
    pub fn len(&self) -> usize {
        self.decoders.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.decoders.is_empty()
    }
}

impl std::fmt::Debug for PayloadCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PayloadCodec")
            .field("types", &self.decoders.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes_codec() -> PayloadCodec {
        let mut c = PayloadCodec::new();
        c.register::<Vec<u8>, _, _>(1, |v| v.clone(), |b| Ok(b.to_vec()));
        c.register::<u64, _, _>(
            2,
            |v| v.to_le_bytes().to_vec(),
            |b| {
                let arr: [u8; 8] = b.try_into().map_err(|_| "u64 wants 8 bytes".to_string())?;
                Ok(u64::from_le_bytes(arr))
            },
        );
        c
    }

    #[test]
    fn roundtrip_preserves_payload_size_and_tag() {
        let c = bytes_codec();
        let buf = DataBuffer::new(vec![9u8, 8, 7], 4096, 42);
        let (ptype, bytes) = c.encode(&buf).unwrap();
        assert_eq!(ptype, 1);
        let back = c
            .decode(ptype, &bytes, buf.size_bytes(), buf.tag())
            .unwrap();
        assert_eq!(back.size_bytes(), 4096);
        assert_eq!(back.tag(), 42);
        assert_eq!(back.downcast::<Vec<u8>>().unwrap(), &vec![9u8, 8, 7]);
    }

    #[test]
    fn unregistered_payload_type_is_a_typed_error() {
        let c = bytes_codec();
        let buf = DataBuffer::new("not registered".to_string(), 10, 0);
        assert!(matches!(c.encode(&buf), Err(WireError::BadPayload(_))));
        assert!(matches!(
            c.decode(99, &[], 0, 0),
            Err(WireError::UnknownPayloadType(99))
        ));
    }

    #[test]
    fn decoder_validation_errors_surface() {
        let c = bytes_codec();
        let e = c.decode(2, &[1, 2, 3], 8, 0).unwrap_err();
        assert!(matches!(e, WireError::BadPayload(m) if m.contains("8 bytes")));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_tag_panics() {
        let mut c = bytes_codec();
        c.register::<String, _, _>(1, |s| s.as_bytes().to_vec(), |_| Ok(String::new()));
    }
}
