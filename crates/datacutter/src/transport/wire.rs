//! Length-prefixed wire framing for cross-process streams.
//!
//! Every frame starts with a fixed magic word (desync and corruption are
//! caught at the next frame boundary, not silently absorbed) followed by a
//! one-byte frame kind. All integers are little-endian fixed-width — the
//! same manual encoding discipline as the `.h4dp` parameter files, so the
//! format is readable with a hex dump and has no serializer dependency.
//!
//! Frame layout:
//!
//! ```text
//! Hello: magic u32 | 0x01 | version u16 | node u32 | digest u64
//! Data : magic u32 | 0x02 | stream u32 | dest u32 | tag u64 | size u64
//!                          | ptype u16 | plen u32 | payload [plen]
//! Eos  : magic u32 | 0x03 | stream u32 | dest u32
//! Error: magic u32 | 0x04 | origin u32 | mlen u32 | message [mlen]
//! ```
//!
//! `dest` is the global index of the consumer copy the buffer is routed to,
//! or [`SHARED_QUEUE`] for demand-driven streams (one shared queue, no
//! per-copy routing). `size` preserves the producer-declared
//! [`crate::DataBuffer::size_bytes`] so byte accounting is bit-identical on
//! both sides of the bridge; `ptype` names the payload codec
//! (see [`super::PayloadCodec`]). Decoding is hardened like
//! `read_parameter_file`: truncation, bad magic, unknown kinds and absurd
//! lengths all yield a typed [`WireError`], never a panic.

use std::fmt;
use std::io::{Read, Write};

/// Magic word opening every frame (`"H4DW"` as a big-endian u32).
pub const WIRE_MAGIC: u32 = 0x4834_4457;

/// Wire protocol version carried in the handshake.
pub const WIRE_VERSION: u16 = 1;

/// `dest` value meaning "the shared demand-driven queue" rather than a
/// specific consumer copy.
pub const SHARED_QUEUE: u32 = u32::MAX;

/// Upper bound on an encoded payload (guards allocation on corrupt input).
pub const MAX_PAYLOAD_LEN: u32 = 256 * 1024 * 1024;

/// Upper bound on an error-frame message (guards allocation on corrupt
/// input).
pub const MAX_MESSAGE_LEN: u32 = 1024 * 1024;

/// A decoded wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Connection handshake: protocol version, sender's node id, and a
    /// digest of the graph spec + node count, so two processes running
    /// different graphs fail fast instead of misrouting buffers.
    Hello {
        /// Protocol version ([`WIRE_VERSION`]).
        version: u16,
        /// Sending node id.
        node: u32,
        /// Graph-spec digest (see [`super::spec_digest`]).
        digest: u64,
    },
    /// One routed data buffer.
    Data {
        /// Stream index in the graph spec.
        stream: u32,
        /// Global consumer copy index, or [`SHARED_QUEUE`].
        dest: u32,
        /// The buffer's routing tag.
        tag: u64,
        /// The producer-declared wire size (`DataBuffer::size_bytes`).
        size: u64,
        /// Payload codec tag (see [`super::PayloadCodec`]).
        ptype: u16,
        /// Encoded payload bytes.
        payload: Vec<u8>,
    },
    /// End of stream for one (stream, dest) route: every producer copy of
    /// the stream on the sending node has finished cleanly.
    Eos {
        /// Stream index in the graph spec.
        stream: u32,
        /// Global consumer copy index, or [`SHARED_QUEUE`].
        dest: u32,
    },
    /// The sending node's run failed; open routes on this connection must
    /// not be treated as cleanly ended.
    Error {
        /// Node id where the failure originated (propagated unchanged when
        /// a node aborts because of a failure elsewhere).
        origin: u32,
        /// Human-readable failure description.
        message: String,
    },
}

/// Typed decode/IO failure of the wire layer.
#[derive(Debug)]
pub enum WireError {
    /// An underlying socket/stream error.
    Io(std::io::Error),
    /// The stream ended in the middle of a frame.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A frame did not start with [`WIRE_MAGIC`].
    BadMagic(u32),
    /// An unknown frame kind byte.
    BadKind(u8),
    /// A declared length exceeds its sanity bound.
    Oversized {
        /// Which length field was oversized.
        field: &'static str,
        /// The declared length.
        len: u32,
        /// The maximum accepted.
        max: u32,
    },
    /// An error-frame message was not valid UTF-8.
    BadUtf8,
    /// The payload codec rejected the frame (unknown type tag or a payload
    /// that fails its type's validation).
    BadPayload(String),
    /// No codec is registered for a payload type tag.
    UnknownPayloadType(u16),
    /// The connection handshake failed (version or digest mismatch, or an
    /// unexpected first frame).
    BadHandshake(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
            WireError::Truncated { context } => {
                write!(f, "truncated frame while reading {context}")
            }
            WireError::BadMagic(m) => {
                write!(f, "bad frame magic {m:#010x} (expected {WIRE_MAGIC:#010x})")
            }
            WireError::BadKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            WireError::Oversized { field, len, max } => {
                write!(f, "{field} length {len} exceeds the {max}-byte bound")
            }
            WireError::BadUtf8 => write!(f, "error-frame message is not valid UTF-8"),
            WireError::BadPayload(m) => write!(f, "payload rejected: {m}"),
            WireError::UnknownPayloadType(t) => {
                write!(f, "no payload codec registered for type tag {t}")
            }
            WireError::BadHandshake(m) => write!(f, "handshake failed: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

const KIND_HELLO: u8 = 0x01;
const KIND_DATA: u8 = 0x02;
const KIND_EOS: u8 = 0x03;
const KIND_ERROR: u8 = 0x04;

fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), WireError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated { context }
        } else {
            WireError::Io(e)
        }
    })
}

macro_rules! read_int {
    ($fn_name:ident, $ty:ty) => {
        fn $fn_name(r: &mut impl Read, context: &'static str) -> Result<$ty, WireError> {
            let mut b = [0u8; std::mem::size_of::<$ty>()];
            read_exact_or(r, &mut b, context)?;
            Ok(<$ty>::from_le_bytes(b))
        }
    };
}

read_int!(read_u16, u16);
read_int!(read_u32, u32);
read_int!(read_u64, u64);

/// Writes one frame. The caller flushes (frames are usually batched behind
/// a `BufWriter`).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&WIRE_MAGIC.to_le_bytes());
    match frame {
        Frame::Hello {
            version,
            node,
            digest,
        } => {
            out.push(KIND_HELLO);
            out.extend_from_slice(&version.to_le_bytes());
            out.extend_from_slice(&node.to_le_bytes());
            out.extend_from_slice(&digest.to_le_bytes());
        }
        Frame::Data {
            stream,
            dest,
            tag,
            size,
            ptype,
            payload,
        } => {
            out.push(KIND_DATA);
            out.extend_from_slice(&stream.to_le_bytes());
            out.extend_from_slice(&dest.to_le_bytes());
            out.extend_from_slice(&tag.to_le_bytes());
            out.extend_from_slice(&size.to_le_bytes());
            out.extend_from_slice(&ptype.to_le_bytes());
            let len = u32::try_from(payload.len()).map_err(|_| WireError::Oversized {
                field: "payload",
                len: u32::MAX,
                max: MAX_PAYLOAD_LEN,
            })?;
            if len > MAX_PAYLOAD_LEN {
                return Err(WireError::Oversized {
                    field: "payload",
                    len,
                    max: MAX_PAYLOAD_LEN,
                });
            }
            out.extend_from_slice(&len.to_le_bytes());
            w.write_all(&out)?;
            w.write_all(payload)?;
            return Ok(());
        }
        Frame::Eos { stream, dest } => {
            out.push(KIND_EOS);
            out.extend_from_slice(&stream.to_le_bytes());
            out.extend_from_slice(&dest.to_le_bytes());
        }
        Frame::Error { origin, message } => {
            out.push(KIND_ERROR);
            out.extend_from_slice(&origin.to_le_bytes());
            let bytes = message.as_bytes();
            let len = u32::try_from(bytes.len())
                .ok()
                .filter(|&l| l <= MAX_MESSAGE_LEN)
                .ok_or(WireError::Oversized {
                    field: "message",
                    len: u32::MAX,
                    max: MAX_MESSAGE_LEN,
                })?;
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(bytes);
        }
    }
    w.write_all(&out)?;
    Ok(())
}

/// Reads one frame. Returns `Ok(None)` on a clean end of stream (EOF
/// exactly at a frame boundary); EOF anywhere inside a frame is a
/// [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, WireError> {
    // The first magic byte doubles as the EOF probe: zero bytes here is a
    // clean close, anything less than four afterwards is truncation.
    let mut first = [0u8; 1];
    match r.read(&mut first) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => return read_frame(r),
        Err(e) => return Err(WireError::Io(e)),
    }
    let mut rest = [0u8; 3];
    read_exact_or(r, &mut rest, "frame magic")?;
    let magic = u32::from_le_bytes([first[0], rest[0], rest[1], rest[2]]);
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let mut kind = [0u8; 1];
    read_exact_or(r, &mut kind, "frame kind")?;
    match kind[0] {
        KIND_HELLO => Ok(Some(Frame::Hello {
            version: read_u16(r, "hello version")?,
            node: read_u32(r, "hello node")?,
            digest: read_u64(r, "hello digest")?,
        })),
        KIND_DATA => {
            let stream = read_u32(r, "data stream")?;
            let dest = read_u32(r, "data dest")?;
            let tag = read_u64(r, "data tag")?;
            let size = read_u64(r, "data size")?;
            let ptype = read_u16(r, "data ptype")?;
            let len = read_u32(r, "data payload length")?;
            if len > MAX_PAYLOAD_LEN {
                return Err(WireError::Oversized {
                    field: "payload",
                    len,
                    max: MAX_PAYLOAD_LEN,
                });
            }
            let mut payload = vec![0u8; len as usize];
            read_exact_or(r, &mut payload, "data payload")?;
            Ok(Some(Frame::Data {
                stream,
                dest,
                tag,
                size,
                ptype,
                payload,
            }))
        }
        KIND_EOS => Ok(Some(Frame::Eos {
            stream: read_u32(r, "eos stream")?,
            dest: read_u32(r, "eos dest")?,
        })),
        KIND_ERROR => {
            let origin = read_u32(r, "error origin")?;
            let len = read_u32(r, "error message length")?;
            if len > MAX_MESSAGE_LEN {
                return Err(WireError::Oversized {
                    field: "message",
                    len,
                    max: MAX_MESSAGE_LEN,
                });
            }
            let mut bytes = vec![0u8; len as usize];
            read_exact_or(r, &mut bytes, "error message")?;
            let message = String::from_utf8(bytes).map_err(|_| WireError::BadUtf8)?;
            Ok(Some(Frame::Error { origin, message }))
        }
        k => Err(WireError::BadKind(k)),
    }
}

/// Encodes a frame to a standalone byte vector (tests, benchmarks).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    write_frame(&mut out, frame).expect("Vec<u8> writes cannot fail below the length bounds");
    out
}

/// FNV-1a digest of the graph spec's JSON plus the node count — carried in
/// the handshake so differently configured processes refuse to pair up.
pub fn spec_digest(spec_json: &[u8], nodes: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for &b in spec_json {
        eat(b);
    }
    for &b in &(nodes as u64).to_le_bytes() {
        eat(b);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = encode_frame(&f);
        let mut cur = std::io::Cursor::new(&bytes);
        let back = read_frame(&mut cur).unwrap().unwrap();
        assert_eq!(f, back);
        assert_eq!(cur.position() as usize, bytes.len(), "no trailing bytes");
    }

    #[test]
    fn all_frame_kinds_roundtrip() {
        roundtrip(Frame::Hello {
            version: WIRE_VERSION,
            node: 3,
            digest: 0xdead_beef_cafe_f00d,
        });
        roundtrip(Frame::Data {
            stream: 2,
            dest: SHARED_QUEUE,
            tag: 77,
            size: 4096,
            ptype: 5,
            payload: vec![1, 2, 3, 4, 5],
        });
        roundtrip(Frame::Eos { stream: 0, dest: 1 });
        roundtrip(Frame::Error {
            origin: 1,
            message: "filter error [io] in RFR#0: boom".into(),
        });
    }

    #[test]
    fn clean_eof_is_none() {
        let mut cur = std::io::Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let bytes = encode_frame(&Frame::Data {
            stream: 1,
            dest: 0,
            tag: 9,
            size: 100,
            ptype: 1,
            payload: vec![7; 32],
        });
        for cut in 1..bytes.len() {
            let mut cur = std::io::Cursor::new(&bytes[..cut]);
            match read_frame(&mut cur) {
                Err(WireError::Truncated { .. }) => {}
                other => panic!("prefix of {cut} bytes gave {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_magic_detected() {
        let mut bytes = encode_frame(&Frame::Eos { stream: 4, dest: 2 });
        bytes[0] ^= 0xff;
        let mut cur = std::io::Cursor::new(&bytes);
        assert!(matches!(read_frame(&mut cur), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn unknown_kind_detected() {
        let mut bytes = encode_frame(&Frame::Eos { stream: 4, dest: 2 });
        bytes[4] = 0x7f;
        let mut cur = std::io::Cursor::new(&bytes);
        assert!(matches!(
            read_frame(&mut cur),
            Err(WireError::BadKind(0x7f))
        ));
    }

    #[test]
    fn oversized_payload_length_rejected_before_allocating() {
        let mut bytes = encode_frame(&Frame::Data {
            stream: 0,
            dest: 0,
            tag: 0,
            size: 0,
            ptype: 0,
            payload: Vec::new(),
        });
        let plen_off = bytes.len() - 4;
        bytes[plen_off..].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut cur = std::io::Cursor::new(&bytes);
        assert!(matches!(
            read_frame(&mut cur),
            Err(WireError::Oversized {
                field: "payload",
                ..
            })
        ));
    }

    #[test]
    fn digest_separates_specs_and_node_counts() {
        let a = spec_digest(b"{\"filters\":[]}", 2);
        let b = spec_digest(b"{\"filters\":[]}", 3);
        let c = spec_digest(b"{\"filters\":[1]}", 2);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
