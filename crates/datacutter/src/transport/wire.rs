//! Length-prefixed wire framing for cross-process streams.
//!
//! Every frame starts with a fixed magic word (desync and corruption are
//! caught at the next frame boundary, not silently absorbed) followed by a
//! one-byte frame kind. All integers are little-endian fixed-width — the
//! same manual encoding discipline as the `.h4dp` parameter files, so the
//! format is readable with a hex dump and has no serializer dependency.
//!
//! Frame layout (protocol version 2):
//!
//! ```text
//! Hello : magic u32 | 0x01 | version u16 | node u32 | digest u64
//!                           | features u32            (version >= 2 only)
//! Data  : magic u32 | 0x02 | stream u32 | dest u32 | tag u64 | size u64
//!                           | ptype u16 | flags u8
//!                           | crc u32                 (flags bit 1 only)
//!                           | raw u32                 (flags bit 0 only)
//!                           | plen u32 | payload [plen]
//! Eos   : magic u32 | 0x03 | stream u32 | dest u32
//! Error : magic u32 | 0x04 | origin u32 | mlen u32 | message [mlen]
//! Credit: magic u32 | 0x05 | stream u32 | dest u32 | credits u32
//! ```
//!
//! `dest` is the global index of the consumer copy the buffer is routed to,
//! or [`SHARED_QUEUE`] for demand-driven streams (one shared queue, no
//! per-copy routing). `size` preserves the producer-declared
//! [`crate::DataBuffer::size_bytes`] so byte accounting is bit-identical on
//! both sides of the bridge; `ptype` names the payload codec
//! (see [`super::PayloadCodec`]).
//!
//! **Version-2 data path.** The `flags` byte makes each `Data` frame
//! self-describing: bit 0 ([`FLAG_COMPRESSED`]) means the wire payload is
//! an [`lz_compress`] block and `raw` carries the decompressed length; bit
//! 1 ([`FLAG_CHECKSUM`]) means `crc` carries the FNV-1a-32 digest of the
//! wire payload bytes (post-compression), verified before decompression.
//! Which flags a writer *uses* is negotiated in the handshake: `Hello`
//! carries a `features` bitmask ([`FEATURE_CHECKSUM`] | [`FEATURE_COMPRESS`])
//! and each side enables only the intersection. `Credit` frames implement
//! per-route flow control: the receiver grants the sender permission for
//! `credits` more `Data` frames on one `(stream, dest)` route (see
//! [`super::node`]); a grant that lifts the window to [`MAX_CREDIT_GRANT`]
//! marks the route unthrottled.
//!
//! Decoding is hardened like `read_parameter_file`: truncation, bad magic,
//! unknown kinds or flags, absurd lengths, checksum mismatches and corrupt
//! compression blocks all yield a typed [`WireError`], never a panic.

use std::fmt;
use std::io::{Read, Write};

/// Magic word opening every frame (`"H4DW"` as a big-endian u32).
pub const WIRE_MAGIC: u32 = 0x4834_4457;

/// Wire protocol version carried in the handshake. Version 2 added the
/// `Data` flags byte (checksums, compression), the `features` word in
/// `Hello`, and the `Credit` frame; mixed-version meshes are rejected at
/// handshake time.
pub const WIRE_VERSION: u16 = 2;

/// `Hello` feature bit: the sender can verify per-frame payload checksums.
pub const FEATURE_CHECKSUM: u32 = 1 << 0;

/// `Hello` feature bit: the sender can decode compressed payloads.
pub const FEATURE_COMPRESS: u32 = 1 << 1;

/// Every feature bit this build understands.
pub const SUPPORTED_FEATURES: u32 = FEATURE_CHECKSUM | FEATURE_COMPRESS;

/// `Data` flag bit: the wire payload is an [`lz_compress`] block.
pub const FLAG_COMPRESSED: u8 = 1 << 0;

/// `Data` flag bit: the frame carries an FNV-1a-32 payload checksum.
pub const FLAG_CHECKSUM: u8 = 1 << 1;

const KNOWN_FLAGS: u8 = FLAG_COMPRESSED | FLAG_CHECKSUM;

/// `dest` value meaning "the shared demand-driven queue" rather than a
/// specific consumer copy.
pub const SHARED_QUEUE: u32 = u32::MAX;

/// Upper bound on an encoded payload (guards allocation on corrupt input).
pub const MAX_PAYLOAD_LEN: u32 = 256 * 1024 * 1024;

/// Upper bound on an error-frame message (guards allocation on corrupt
/// input).
pub const MAX_MESSAGE_LEN: u32 = 1024 * 1024;

/// Upper bound on one `Credit` grant, and the sticky "unthrottled" window:
/// a route whose window reaches this value stops counting credits (the
/// receiver granted it when abandoning the route, see [`super::node`]).
pub const MAX_CREDIT_GRANT: u32 = 1 << 20;

/// Payloads below this many bytes are never compressed — the token
/// overhead cannot win and the attempt wastes cycles on `ParamPacket`s.
pub const COMPRESS_MIN_LEN: usize = 64;

/// Per-connection frame options negotiated in the handshake: the
/// intersection of what this node was configured to send and what the
/// peer's `Hello` advertised.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireConfig {
    /// Stamp outgoing `Data` frames with an FNV-1a-32 payload checksum.
    pub checksum: bool,
    /// Compress outgoing `Data` payloads when it wins.
    pub compress: bool,
}

impl WireConfig {
    /// The `Hello` feature bits this configuration advertises.
    pub fn features(self) -> u32 {
        (if self.checksum { FEATURE_CHECKSUM } else { 0 })
            | (if self.compress { FEATURE_COMPRESS } else { 0 })
    }

    /// The configuration actually usable against a peer that advertised
    /// `peer_features`: the bitwise intersection.
    pub fn negotiate(self, peer_features: u32) -> Self {
        Self {
            checksum: self.checksum && peer_features & FEATURE_CHECKSUM != 0,
            compress: self.compress && peer_features & FEATURE_COMPRESS != 0,
        }
    }
}

/// A decoded wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Connection handshake: protocol version, sender's node id, a digest
    /// of the graph spec + node count (so two processes running different
    /// graphs fail fast instead of misrouting buffers), and the feature
    /// bits the sender supports.
    Hello {
        /// Protocol version ([`WIRE_VERSION`]).
        version: u16,
        /// Sending node id.
        node: u32,
        /// Graph-spec digest (see [`super::spec_digest`]).
        digest: u64,
        /// Supported feature bits; on the wire only for `version >= 2`
        /// (decoded as `0` from a version-1 hello).
        features: u32,
    },
    /// One routed data buffer. The payload here is always the *logical*
    /// (decompressed, verified) bytes — compression and checksums live
    /// only on the wire.
    Data {
        /// Stream index in the graph spec.
        stream: u32,
        /// Global consumer copy index, or [`SHARED_QUEUE`].
        dest: u32,
        /// The buffer's routing tag.
        tag: u64,
        /// The producer-declared wire size (`DataBuffer::size_bytes`).
        size: u64,
        /// Payload codec tag (see [`super::PayloadCodec`]).
        ptype: u16,
        /// Encoded payload bytes.
        payload: Vec<u8>,
    },
    /// End of stream for one (stream, dest) route: every producer copy of
    /// the stream on the sending node has finished cleanly.
    Eos {
        /// Stream index in the graph spec.
        stream: u32,
        /// Global consumer copy index, or [`SHARED_QUEUE`].
        dest: u32,
    },
    /// The sending node's run failed; open routes on this connection must
    /// not be treated as cleanly ended.
    Error {
        /// Node id where the failure originated (propagated unchanged when
        /// a node aborts because of a failure elsewhere).
        origin: u32,
        /// Human-readable failure description.
        message: String,
    },
    /// Flow control: the receiver of a route grants the sender permission
    /// for `credits` more `Data` frames on it.
    Credit {
        /// Stream index in the graph spec.
        stream: u32,
        /// Global consumer copy index, or [`SHARED_QUEUE`].
        dest: u32,
        /// Additional frames permitted; `1..=`[`MAX_CREDIT_GRANT`].
        credits: u32,
    },
}

/// Typed decode/IO failure of the wire layer.
#[derive(Debug)]
pub enum WireError {
    /// An underlying socket/stream error.
    Io(std::io::Error),
    /// The stream ended in the middle of a frame.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A frame did not start with [`WIRE_MAGIC`].
    BadMagic(u32),
    /// An unknown frame kind byte.
    BadKind(u8),
    /// A `Data` frame carried flag bits this build does not understand.
    BadFlags(u8),
    /// A declared length exceeds its sanity bound.
    Oversized {
        /// Which length field was oversized.
        field: &'static str,
        /// The declared length.
        len: u32,
        /// The maximum accepted.
        max: u32,
    },
    /// An error-frame message was not valid UTF-8.
    BadUtf8,
    /// The payload codec rejected the frame (unknown type tag or a payload
    /// that fails its type's validation).
    BadPayload(String),
    /// No codec is registered for a payload type tag.
    UnknownPayloadType(u16),
    /// The connection handshake failed (version or digest mismatch, or an
    /// unexpected first frame).
    BadHandshake(String),
    /// A `Data` frame's payload bytes do not match its checksum.
    ChecksumMismatch {
        /// The checksum carried by the frame.
        expected: u32,
        /// The checksum computed over the received payload.
        computed: u32,
    },
    /// A compressed payload failed to decompress cleanly.
    BadCompression(String),
    /// A `Credit` frame granted zero or more than [`MAX_CREDIT_GRANT`].
    BadCredit(u32),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
            WireError::Truncated { context } => {
                write!(f, "truncated frame while reading {context}")
            }
            WireError::BadMagic(m) => {
                write!(f, "bad frame magic {m:#010x} (expected {WIRE_MAGIC:#010x})")
            }
            WireError::BadKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            WireError::BadFlags(b) => write!(f, "unknown data-frame flags {b:#04x}"),
            WireError::Oversized { field, len, max } => {
                write!(f, "{field} length {len} exceeds the {max}-byte bound")
            }
            WireError::BadUtf8 => write!(f, "error-frame message is not valid UTF-8"),
            WireError::BadPayload(m) => write!(f, "payload rejected: {m}"),
            WireError::UnknownPayloadType(t) => {
                write!(f, "no payload codec registered for type tag {t}")
            }
            WireError::BadHandshake(m) => write!(f, "handshake failed: {m}"),
            WireError::ChecksumMismatch { expected, computed } => write!(
                f,
                "payload checksum mismatch: frame says {expected:#010x}, \
                 received bytes hash to {computed:#010x}"
            ),
            WireError::BadCompression(m) => write!(f, "corrupt compressed payload: {m}"),
            WireError::BadCredit(c) => write!(f, "credit grant {c} outside 1..={MAX_CREDIT_GRANT}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

const KIND_HELLO: u8 = 0x01;
const KIND_DATA: u8 = 0x02;
const KIND_EOS: u8 = 0x03;
const KIND_ERROR: u8 = 0x04;
const KIND_CREDIT: u8 = 0x05;

/// FNV-1a 32-bit digest — the per-frame payload checksum. Not
/// cryptographic; catches bit rot and desync on links that leave one host.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h = 0x811c_9dc5u32;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

// ---- LZ-style payload compression -----------------------------------------
//
// A from-scratch byte-oriented LZ format in the LZ4-block spirit, kept
// deliberately tiny so the decoder can be exhaustively hardened:
//
//   token t < 0x80 : literal run of (t + 1) bytes follows         (1..=128)
//   token t >= 0x80: match of ((t & 0x7f) + 4) bytes              (4..=131)
//                    at back-offset u16 LE (1..=65535), overlap allowed
//
// The compressor is greedy with a 8192-entry hash of 4-byte prefixes; the
// decoder verifies every offset and never writes past the declared raw
// length, so corrupt input yields a typed error, never UB or unbounded
// allocation.

const LZ_HASH_BITS: u32 = 13;
const LZ_MIN_MATCH: usize = 4;
const LZ_MAX_MATCH: usize = 131;
const LZ_MAX_OFFSET: usize = 65535;

#[inline]
fn lz_hash(w: u32) -> usize {
    ((w.wrapping_mul(0x9e37_79b1)) >> (32 - LZ_HASH_BITS)) as usize
}

fn lz_push_literals(out: &mut Vec<u8>, mut lits: &[u8]) {
    while !lits.is_empty() {
        let n = lits.len().min(128);
        out.push((n - 1) as u8);
        out.extend_from_slice(&lits[..n]);
        lits = &lits[n..];
    }
}

/// Compresses `input` into the transport's LZ block format. Always
/// succeeds; the caller compares lengths and keeps the raw bytes when
/// compression does not win.
pub fn lz_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    // Positions are stored +1 so 0 means "empty slot".
    let mut table = vec![0u32; 1 << LZ_HASH_BITS];
    let mut lit_start = 0usize;
    let mut i = 0usize;
    while i + LZ_MIN_MATCH <= input.len() {
        let w = u32::from_le_bytes([input[i], input[i + 1], input[i + 2], input[i + 3]]);
        let h = lz_hash(w);
        let cand = table[h] as usize;
        table[h] = (i + 1) as u32;
        if cand > 0 {
            let c = cand - 1;
            let off = i - c;
            if off >= 1
                && off <= LZ_MAX_OFFSET
                && input[c..c + LZ_MIN_MATCH] == input[i..i + LZ_MIN_MATCH]
            {
                let mut len = LZ_MIN_MATCH;
                while len < LZ_MAX_MATCH
                    && i + len < input.len()
                    && input[c + len] == input[i + len]
                {
                    len += 1;
                }
                lz_push_literals(&mut out, &input[lit_start..i]);
                out.push(0x80 | (len - LZ_MIN_MATCH) as u8);
                out.extend_from_slice(&(off as u16).to_le_bytes());
                i += len;
                lit_start = i;
                continue;
            }
        }
        i += 1;
    }
    lz_push_literals(&mut out, &input[lit_start..]);
    out
}

/// Decompresses an [`lz_compress`] block into exactly `raw_len` bytes.
///
/// # Errors
/// A human-readable description of the first structural violation: a run
/// past the end of input, an offset outside the produced output, or a
/// length disagreement with `raw_len`. The output allocation is bounded by
/// `raw_len`, which callers bound by [`MAX_PAYLOAD_LEN`].
pub fn lz_decompress(input: &[u8], raw_len: usize) -> Result<Vec<u8>, String> {
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0usize;
    while i < input.len() {
        let t = input[i];
        i += 1;
        if t < 0x80 {
            let n = t as usize + 1;
            if i + n > input.len() {
                return Err(format!("literal run of {n} past end of block"));
            }
            if out.len() + n > raw_len {
                return Err(format!(
                    "literal run overflows declared raw length {raw_len}"
                ));
            }
            out.extend_from_slice(&input[i..i + n]);
            i += n;
        } else {
            let len = (t & 0x7f) as usize + LZ_MIN_MATCH;
            if i + 2 > input.len() {
                return Err("match token truncated before its offset".into());
            }
            let off = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
            i += 2;
            if off == 0 || off > out.len() {
                return Err(format!(
                    "match offset {off} outside the {} bytes produced",
                    out.len()
                ));
            }
            if out.len() + len > raw_len {
                return Err(format!("match overflows declared raw length {raw_len}"));
            }
            // Byte-at-a-time copy: offsets smaller than the match length
            // are legal (RLE-style overlap) and must see their own output.
            let start = out.len() - off;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    if out.len() != raw_len {
        return Err(format!(
            "block decompressed to {} bytes, header declared {raw_len}",
            out.len()
        ));
    }
    Ok(out)
}

fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), WireError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated { context }
        } else {
            WireError::Io(e)
        }
    })
}

macro_rules! read_int {
    ($fn_name:ident, $ty:ty) => {
        fn $fn_name(r: &mut impl Read, context: &'static str) -> Result<$ty, WireError> {
            let mut b = [0u8; std::mem::size_of::<$ty>()];
            read_exact_or(r, &mut b, context)?;
            Ok(<$ty>::from_le_bytes(b))
        }
    };
}

read_int!(read_u16, u16);
read_int!(read_u32, u32);
read_int!(read_u64, u64);

fn read_u8(r: &mut impl Read, context: &'static str) -> Result<u8, WireError> {
    let mut b = [0u8; 1];
    read_exact_or(r, &mut b, context)?;
    Ok(b[0])
}

fn payload_len(len: usize, field: &'static str) -> Result<u32, WireError> {
    u32::try_from(len)
        .ok()
        .filter(|&l| l <= MAX_PAYLOAD_LEN)
        .ok_or(WireError::Oversized {
            field,
            len: u32::try_from(len).unwrap_or(u32::MAX),
            max: MAX_PAYLOAD_LEN,
        })
}

/// Encodes a `Data` frame as a `(header, wire payload)` pair under `cfg`,
/// applying compression (when it wins and the payload is at least
/// [`COMPRESS_MIN_LEN`]) and the payload checksum. The split lets a
/// batching writer queue the header bytes and the (possibly large) payload
/// as separate vectored-write segments without copying the payload again.
///
/// # Errors
/// [`WireError::Oversized`] when the payload exceeds [`MAX_PAYLOAD_LEN`].
#[allow(clippy::too_many_arguments)]
pub fn encode_data_frame(
    stream: u32,
    dest: u32,
    tag: u64,
    size: u64,
    ptype: u16,
    payload: Vec<u8>,
    cfg: &WireConfig,
) -> Result<(Vec<u8>, Vec<u8>), WireError> {
    let raw_len = payload_len(payload.len(), "payload")?;
    let (body, mut flags) = if cfg.compress && payload.len() >= COMPRESS_MIN_LEN {
        let packed = lz_compress(&payload);
        if packed.len() < payload.len() {
            (packed, FLAG_COMPRESSED)
        } else {
            (payload, 0)
        }
    } else {
        (payload, 0)
    };
    if cfg.checksum {
        flags |= FLAG_CHECKSUM;
    }
    let mut header = Vec::with_capacity(44);
    header.extend_from_slice(&WIRE_MAGIC.to_le_bytes());
    header.push(KIND_DATA);
    header.extend_from_slice(&stream.to_le_bytes());
    header.extend_from_slice(&dest.to_le_bytes());
    header.extend_from_slice(&tag.to_le_bytes());
    header.extend_from_slice(&size.to_le_bytes());
    header.extend_from_slice(&ptype.to_le_bytes());
    header.push(flags);
    if flags & FLAG_CHECKSUM != 0 {
        header.extend_from_slice(&fnv1a32(&body).to_le_bytes());
    }
    if flags & FLAG_COMPRESSED != 0 {
        header.extend_from_slice(&raw_len.to_le_bytes());
    }
    header.extend_from_slice(&payload_len(body.len(), "payload")?.to_le_bytes());
    Ok((header, body))
}

/// Writes one frame under `cfg` (checksums/compression apply to `Data`
/// frames only). The caller flushes — frames are batched by the writer.
pub fn write_frame_cfg(
    w: &mut impl Write,
    frame: &Frame,
    cfg: &WireConfig,
) -> Result<(), WireError> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&WIRE_MAGIC.to_le_bytes());
    match frame {
        Frame::Hello {
            version,
            node,
            digest,
            features,
        } => {
            out.push(KIND_HELLO);
            out.extend_from_slice(&version.to_le_bytes());
            out.extend_from_slice(&node.to_le_bytes());
            out.extend_from_slice(&digest.to_le_bytes());
            // The features word exists only in version-2 hellos; encoding
            // a version-1 frame (tests, mixed-version probes) omits it.
            if *version >= 2 {
                out.extend_from_slice(&features.to_le_bytes());
            }
        }
        Frame::Data {
            stream,
            dest,
            tag,
            size,
            ptype,
            payload,
        } => {
            let (header, body) =
                encode_data_frame(*stream, *dest, *tag, *size, *ptype, payload.clone(), cfg)?;
            w.write_all(&header)?;
            w.write_all(&body)?;
            return Ok(());
        }
        Frame::Eos { stream, dest } => {
            out.push(KIND_EOS);
            out.extend_from_slice(&stream.to_le_bytes());
            out.extend_from_slice(&dest.to_le_bytes());
        }
        Frame::Error { origin, message } => {
            out.push(KIND_ERROR);
            out.extend_from_slice(&origin.to_le_bytes());
            let bytes = message.as_bytes();
            let len = u32::try_from(bytes.len())
                .ok()
                .filter(|&l| l <= MAX_MESSAGE_LEN)
                .ok_or(WireError::Oversized {
                    field: "message",
                    len: u32::MAX,
                    max: MAX_MESSAGE_LEN,
                })?;
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(bytes);
        }
        Frame::Credit {
            stream,
            dest,
            credits,
        } => {
            if *credits == 0 || *credits > MAX_CREDIT_GRANT {
                return Err(WireError::BadCredit(*credits));
            }
            out.push(KIND_CREDIT);
            out.extend_from_slice(&stream.to_le_bytes());
            out.extend_from_slice(&dest.to_le_bytes());
            out.extend_from_slice(&credits.to_le_bytes());
        }
    }
    w.write_all(&out)?;
    Ok(())
}

/// Writes one frame with checksums and compression off (the
/// pre-negotiation default; handshake frames always go this way).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    write_frame_cfg(w, frame, &WireConfig::default())
}

/// Reads one frame. Returns `Ok(None)` on a clean end of stream (EOF
/// exactly at a frame boundary); EOF anywhere inside a frame is a
/// [`WireError::Truncated`]. `Data` frames are self-describing — the flags
/// byte says whether to verify a checksum and/or decompress — so no
/// negotiated state is needed to decode.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, WireError> {
    // The first magic byte doubles as the EOF probe: zero bytes here is a
    // clean close, anything less than four afterwards is truncation.
    let mut first = [0u8; 1];
    match r.read(&mut first) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => return read_frame(r),
        Err(e) => return Err(WireError::Io(e)),
    }
    let mut rest = [0u8; 3];
    read_exact_or(r, &mut rest, "frame magic")?;
    let magic = u32::from_le_bytes([first[0], rest[0], rest[1], rest[2]]);
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let kind = read_u8(r, "frame kind")?;
    match kind {
        KIND_HELLO => {
            let version = read_u16(r, "hello version")?;
            let node = read_u32(r, "hello node")?;
            let digest = read_u64(r, "hello digest")?;
            let features = if version >= 2 {
                read_u32(r, "hello features")?
            } else {
                0
            };
            Ok(Some(Frame::Hello {
                version,
                node,
                digest,
                features,
            }))
        }
        KIND_DATA => {
            let stream = read_u32(r, "data stream")?;
            let dest = read_u32(r, "data dest")?;
            let tag = read_u64(r, "data tag")?;
            let size = read_u64(r, "data size")?;
            let ptype = read_u16(r, "data ptype")?;
            let flags = read_u8(r, "data flags")?;
            if flags & !KNOWN_FLAGS != 0 {
                return Err(WireError::BadFlags(flags));
            }
            let crc = if flags & FLAG_CHECKSUM != 0 {
                Some(read_u32(r, "data checksum")?)
            } else {
                None
            };
            let raw = if flags & FLAG_COMPRESSED != 0 {
                let raw = read_u32(r, "data raw length")?;
                if raw > MAX_PAYLOAD_LEN {
                    return Err(WireError::Oversized {
                        field: "raw payload",
                        len: raw,
                        max: MAX_PAYLOAD_LEN,
                    });
                }
                Some(raw)
            } else {
                None
            };
            let len = read_u32(r, "data payload length")?;
            if len > MAX_PAYLOAD_LEN {
                return Err(WireError::Oversized {
                    field: "payload",
                    len,
                    max: MAX_PAYLOAD_LEN,
                });
            }
            let mut payload = vec![0u8; len as usize];
            read_exact_or(r, &mut payload, "data payload")?;
            if let Some(expected) = crc {
                let computed = fnv1a32(&payload);
                if computed != expected {
                    return Err(WireError::ChecksumMismatch { expected, computed });
                }
            }
            let payload = match raw {
                Some(raw_len) => {
                    lz_decompress(&payload, raw_len as usize).map_err(WireError::BadCompression)?
                }
                None => payload,
            };
            Ok(Some(Frame::Data {
                stream,
                dest,
                tag,
                size,
                ptype,
                payload,
            }))
        }
        KIND_EOS => Ok(Some(Frame::Eos {
            stream: read_u32(r, "eos stream")?,
            dest: read_u32(r, "eos dest")?,
        })),
        KIND_ERROR => {
            let origin = read_u32(r, "error origin")?;
            let len = read_u32(r, "error message length")?;
            if len > MAX_MESSAGE_LEN {
                return Err(WireError::Oversized {
                    field: "message",
                    len,
                    max: MAX_MESSAGE_LEN,
                });
            }
            let mut bytes = vec![0u8; len as usize];
            read_exact_or(r, &mut bytes, "error message")?;
            let message = String::from_utf8(bytes).map_err(|_| WireError::BadUtf8)?;
            Ok(Some(Frame::Error { origin, message }))
        }
        KIND_CREDIT => {
            let stream = read_u32(r, "credit stream")?;
            let dest = read_u32(r, "credit dest")?;
            let credits = read_u32(r, "credit grant")?;
            if credits == 0 || credits > MAX_CREDIT_GRANT {
                return Err(WireError::BadCredit(credits));
            }
            Ok(Some(Frame::Credit {
                stream,
                dest,
                credits,
            }))
        }
        k => Err(WireError::BadKind(k)),
    }
}

/// Encodes a frame to a standalone byte vector with default options
/// (tests, benchmarks, handshake).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    write_frame(&mut out, frame).expect("Vec<u8> writes cannot fail below the length bounds");
    out
}

/// Encodes a frame to a standalone byte vector under `cfg`.
pub fn encode_frame_cfg(frame: &Frame, cfg: &WireConfig) -> Vec<u8> {
    let mut out = Vec::new();
    write_frame_cfg(&mut out, frame, cfg)
        .expect("Vec<u8> writes cannot fail below the length bounds");
    out
}

/// FNV-1a digest of the graph spec's JSON plus the node count — carried in
/// the handshake so differently configured processes refuse to pair up.
pub fn spec_digest(spec_json: &[u8], nodes: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for &b in spec_json {
        eat(b);
    }
    for &b in &(nodes as u64).to_le_bytes() {
        eat(b);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_ON: WireConfig = WireConfig {
        checksum: true,
        compress: true,
    };

    fn roundtrip_cfg(f: Frame, cfg: &WireConfig) {
        let bytes = encode_frame_cfg(&f, cfg);
        let mut cur = std::io::Cursor::new(&bytes);
        let back = read_frame(&mut cur).unwrap().unwrap();
        assert_eq!(f, back);
        assert_eq!(cur.position() as usize, bytes.len(), "no trailing bytes");
    }

    fn roundtrip(f: Frame) {
        roundtrip_cfg(f, &WireConfig::default());
    }

    #[test]
    fn all_frame_kinds_roundtrip() {
        roundtrip(Frame::Hello {
            version: WIRE_VERSION,
            node: 3,
            digest: 0xdead_beef_cafe_f00d,
            features: SUPPORTED_FEATURES,
        });
        roundtrip(Frame::Data {
            stream: 2,
            dest: SHARED_QUEUE,
            tag: 77,
            size: 4096,
            ptype: 5,
            payload: vec![1, 2, 3, 4, 5],
        });
        roundtrip(Frame::Eos { stream: 0, dest: 1 });
        roundtrip(Frame::Error {
            origin: 1,
            message: "filter error [io] in RFR#0: boom".into(),
        });
        roundtrip(Frame::Credit {
            stream: 3,
            dest: 0,
            credits: 16,
        });
    }

    #[test]
    fn data_roundtrips_under_every_option_combination() {
        let payloads: Vec<Vec<u8>> = vec![
            Vec::new(),
            vec![9; 5],
            vec![0xab; 4096],                                     // compresses well
            (0..2048u32).flat_map(|i| i.to_le_bytes()).collect(), // mixed
        ];
        for checksum in [false, true] {
            for compress in [false, true] {
                let cfg = WireConfig { checksum, compress };
                for p in &payloads {
                    roundtrip_cfg(
                        Frame::Data {
                            stream: 1,
                            dest: 2,
                            tag: 42,
                            size: p.len() as u64,
                            ptype: 7,
                            payload: p.clone(),
                        },
                        &cfg,
                    );
                }
            }
        }
    }

    #[test]
    fn version_1_hello_has_no_features_word_and_decodes_to_zero() {
        let v1 = encode_frame(&Frame::Hello {
            version: 1,
            node: 4,
            digest: 9,
            features: 0,
        });
        let v2 = encode_frame(&Frame::Hello {
            version: 2,
            node: 4,
            digest: 9,
            features: SUPPORTED_FEATURES,
        });
        assert_eq!(v2.len(), v1.len() + 4);
        let mut cur = std::io::Cursor::new(&v1);
        match read_frame(&mut cur).unwrap().unwrap() {
            Frame::Hello {
                version, features, ..
            } => {
                assert_eq!(version, 1);
                assert_eq!(features, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn clean_eof_is_none() {
        let mut cur = std::io::Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let frame = Frame::Data {
            stream: 1,
            dest: 0,
            tag: 9,
            size: 100,
            ptype: 1,
            payload: vec![7; 32],
        };
        for cfg in [WireConfig::default(), ALL_ON] {
            let bytes = encode_frame_cfg(&frame, &cfg);
            for cut in 1..bytes.len() {
                let mut cur = std::io::Cursor::new(&bytes[..cut]);
                match read_frame(&mut cur) {
                    Err(WireError::Truncated { .. }) => {}
                    other => panic!("prefix of {cut} bytes gave {other:?}"),
                }
            }
        }
    }

    #[test]
    fn corrupt_magic_detected() {
        let mut bytes = encode_frame(&Frame::Eos { stream: 4, dest: 2 });
        bytes[0] ^= 0xff;
        let mut cur = std::io::Cursor::new(&bytes);
        assert!(matches!(read_frame(&mut cur), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn unknown_kind_detected() {
        let mut bytes = encode_frame(&Frame::Eos { stream: 4, dest: 2 });
        bytes[4] = 0x7f;
        let mut cur = std::io::Cursor::new(&bytes);
        assert!(matches!(
            read_frame(&mut cur),
            Err(WireError::BadKind(0x7f))
        ));
    }

    #[test]
    fn unknown_data_flags_detected() {
        let mut bytes = encode_frame(&Frame::Data {
            stream: 0,
            dest: 0,
            tag: 0,
            size: 0,
            ptype: 0,
            payload: Vec::new(),
        });
        // flags byte sits right after magic|kind|stream|dest|tag|size|ptype.
        let flags_off = 4 + 1 + 4 + 4 + 8 + 8 + 2;
        bytes[flags_off] = 0x80;
        let mut cur = std::io::Cursor::new(&bytes);
        assert!(matches!(
            read_frame(&mut cur),
            Err(WireError::BadFlags(0x80))
        ));
    }

    #[test]
    fn oversized_payload_length_rejected_before_allocating() {
        let mut bytes = encode_frame(&Frame::Data {
            stream: 0,
            dest: 0,
            tag: 0,
            size: 0,
            ptype: 0,
            payload: Vec::new(),
        });
        let plen_off = bytes.len() - 4;
        bytes[plen_off..].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut cur = std::io::Cursor::new(&bytes);
        assert!(matches!(
            read_frame(&mut cur),
            Err(WireError::Oversized {
                field: "payload",
                ..
            })
        ));
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let cfg = WireConfig {
            checksum: true,
            compress: false,
        };
        let bytes = encode_frame_cfg(
            &Frame::Data {
                stream: 1,
                dest: 1,
                tag: 5,
                size: 16,
                ptype: 2,
                payload: (0..16).collect(),
            },
            &cfg,
        );
        let payload_start = bytes.len() - 16;
        for pos in payload_start..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x40;
            let mut cur = std::io::Cursor::new(&corrupt);
            assert!(
                matches!(
                    read_frame(&mut cur),
                    Err(WireError::ChecksumMismatch { .. })
                ),
                "flip at {pos} went undetected"
            );
        }
    }

    #[test]
    fn credit_bounds_enforced_on_write_and_read() {
        for bad in [0u32, MAX_CREDIT_GRANT + 1, u32::MAX] {
            let mut sink = Vec::new();
            assert!(matches!(
                write_frame(
                    &mut sink,
                    &Frame::Credit {
                        stream: 0,
                        dest: 0,
                        credits: bad
                    }
                ),
                Err(WireError::BadCredit(_))
            ));
            // Hand-craft the same frame on the wire.
            let mut bytes = encode_frame(&Frame::Credit {
                stream: 0,
                dest: 0,
                credits: 1,
            });
            let off = bytes.len() - 4;
            bytes[off..].copy_from_slice(&bad.to_le_bytes());
            let mut cur = std::io::Cursor::new(&bytes);
            assert!(matches!(read_frame(&mut cur), Err(WireError::BadCredit(_))));
        }
    }

    #[test]
    fn lz_roundtrips_structured_and_incompressible_data() {
        let cases: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"abcabcabcabcabcabcabcabc".to_vec(),
            vec![0u8; 100_000],
            (0..50_000u32)
                .flat_map(|i| (i % 251).to_le_bytes())
                .collect(),
            (0..4096u32)
                .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
                .collect(),
        ];
        for data in cases {
            let packed = lz_compress(&data);
            let back = lz_decompress(&packed, data.len()).unwrap();
            assert_eq!(back, data);
        }
    }

    #[test]
    fn lz_compresses_repetitive_payloads() {
        let data = vec![0x5a; 65536];
        let packed = lz_compress(&data);
        assert!(packed.len() * 10 < data.len(), "{} bytes", packed.len());
    }

    #[test]
    fn lz_decoder_rejects_corrupt_blocks_with_typed_errors() {
        // Offset beyond produced output.
        let block = [0x80u8, 0xff, 0xff];
        assert!(lz_decompress(&block, 4).is_err());
        // Zero offset.
        let block = [0x00u8, 0x42, 0x80, 0x00, 0x00];
        assert!(lz_decompress(&block, 5).is_err());
        // Literal run past end of block.
        let block = [0x7fu8, 0x01];
        assert!(lz_decompress(&block, 128).is_err());
        // Output length disagreement.
        let block = [0x00u8, 0x42];
        assert!(lz_decompress(&block, 2).is_err());
        // Never more output than declared.
        let good = lz_compress(&vec![7u8; 1000]);
        assert!(lz_decompress(&good, 999).is_err());
    }

    #[test]
    fn negotiation_is_the_feature_intersection() {
        let want = WireConfig {
            checksum: true,
            compress: true,
        };
        assert_eq!(want.negotiate(SUPPORTED_FEATURES), want);
        assert_eq!(
            want.negotiate(FEATURE_CHECKSUM),
            WireConfig {
                checksum: true,
                compress: false
            }
        );
        assert_eq!(want.negotiate(0), WireConfig::default());
        assert_eq!(
            WireConfig::default()
                .negotiate(SUPPORTED_FEATURES)
                .features(),
            0
        );
    }

    #[test]
    fn digest_separates_specs_and_node_counts() {
        let a = spec_digest(b"{\"filters\":[]}", 2);
        let b = spec_digest(b"{\"filters\":[]}", 3);
        let c = spec_digest(b"{\"filters\":[1]}", 2);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
