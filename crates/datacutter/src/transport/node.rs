//! Multi-process execution: one OS process per node, bridged over TCP.
//!
//! [`run_node`] executes the partition of a placed [`GraphSpec`] that maps
//! to one node id, connecting to every peer process over loopback (or any
//! reachable address) with the length-prefixed frame protocol of
//! [`super::wire`]. Same-node streams keep the engine's zero-copy `Arc`
//! path; cross-node streams are split into a **sender half** — an ordinary
//! bounded channel installed at the remote copy's position in the
//! producer's output port, drained by a per-peer TCP writer thread, so
//! backpressure and `blocked_send` accounting work unchanged — and a
//! **receiver half** — a per-peer TCP reader thread that decodes frames and
//! injects buffers into the local consumer queues under the stream's
//! declared [`crate::schedule::SchedulePolicy`].
//!
//! **Handshake.** Node *i* dials every peer *j < i* and accepts from every
//! peer *j > i*: one TCP connection per unordered pair, full mesh. Both
//! sides exchange a `Hello` frame carrying the protocol version, the
//! sender's node id, a digest of the graph spec plus node count, and the
//! feature bits (checksums, compression) this build was configured to use;
//! a version or digest mismatch aborts the run with a typed error before
//! any filter spawns, and the connection settles on the feature
//! intersection. The accept side polls with a deadline, so a peer that
//! never launches produces a typed timeout naming the missing nodes
//! instead of a hang.
//!
//! **Frame path.** Each connection runs three threads. The *writer* drains
//! every uplink channel routed to its peer per wakeup and coalesces the
//! ready frames into one vectored flush — replacing v1's syscall per
//! frame — gated by per-route credit windows. The *reader* decodes frames
//! off the socket and forwards them; the *injector* owns the local route
//! map, decodes payloads, feeds consumer queues (staging overflow so one
//! slow consumer never stalls the socket for the other routes), and grants
//! a credit back to the peer for each buffer it hands to a consumer queue.
//!
//! **End-of-stream.** When a cross-node route's local producers finish, the
//! uplink channel disconnects and the writer emits an explicit `Eos` frame
//! for that route; the peer's injector drops its clone of the
//! consumer-queue sender (after any staged buffers drain), and the consumer
//! observes end-of-input exactly as it would locally. Connection close is
//! *not* EOS — a socket that dies with live routes is a peer loss.
//!
//! **Failure propagation.** A failing node raises its run-level failure
//! flag before any channel drops (the engine's existing discipline), so its
//! writers observe `failed` at disconnect time and send an `Error` frame —
//! carrying the *origin* node id — instead of `Eos`. Receivers raise their
//! own flag, drop their injectors, and record a typed
//! [`FilterErrorKind::Io`] error naming the failed peer; frames whose
//! origin is the receiving node itself are demoted to secondary so an echo
//! can never shadow the genuine local root cause. A connection that dies
//! without an `Error` frame is reported as `lost connection to node N`.

use crate::buffer::DataBuffer;
use crate::engine::{
    run_graph_partition, EngineConfig, FilterFactory, Partition, RunFailure, RunOutcome,
    StreamInjector,
};
use crate::filter::{FilterError, FilterErrorKind, Msg};
use crate::graph::GraphSpec;
use crate::metrics::ConnectionReport;
use crate::transport::codec::PayloadCodec;
use crate::transport::wire::{
    encode_data_frame, read_frame, spec_digest, write_frame, Frame, WireConfig, MAX_CREDIT_GRANT,
    SHARED_QUEUE, WIRE_VERSION,
};
use crossbeam::channel::{
    bounded, unbounded, Receiver, Select, Sender, TryRecvError, TrySendError,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{IoSlice, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Where an injected transport fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFaultKind {
    /// Hard-close the connection (both directions) — simulates a peer
    /// crash or network partition mid-run.
    Drop,
    /// Sleep this long before every subsequent frame write — simulates a
    /// congested link; benign, exercises backpressure through the uplink.
    Stall(Duration),
}

/// A deterministic transport fault, for chaos tests: applied by the writer
/// thread toward `peer` (or every peer) after `after_frames` data frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportFault {
    /// Restrict the fault to the connection toward this peer; `None` arms
    /// every writer.
    pub peer: Option<usize>,
    /// Number of data frames to deliver before the fault fires.
    pub after_frames: u64,
    /// What happens when it fires.
    pub kind: TransportFaultKind,
}

impl TransportFault {
    /// Environment variable read by [`TransportFault::from_env`].
    pub const ENV: &'static str = "H4D_TRANSPORT_FAULT";

    /// Parses `H4D_TRANSPORT_FAULT` for this node.
    ///
    /// Format: `drop:after=N[:peer=K][:node=J]` or
    /// `stall:after=N:ms=M[:peer=K][:node=J]`. The optional `node` selector
    /// restricts the fault to one process of a multi-node launch; when
    /// present and different from `self_node` the fault is ignored, so a
    /// parent can export one value for all children. Returns `None` when
    /// the variable is unset, not aimed at this node, or malformed (chaos
    /// harnesses set it deliberately; a typo degrades to a fault-free run
    /// the test then reports as such).
    pub fn from_env(self_node: usize) -> Option<Self> {
        Self::parse(&std::env::var(Self::ENV).ok()?, self_node)
    }

    /// Parses the [`TransportFault::ENV`] syntax; see
    /// [`TransportFault::from_env`].
    pub fn parse(value: &str, self_node: usize) -> Option<Self> {
        let mut parts = value.split(':');
        let kind_word = parts.next()?;
        let mut after: Option<u64> = None;
        let mut ms: Option<u64> = None;
        let mut peer: Option<usize> = None;
        let mut node: Option<usize> = None;
        for part in parts {
            let (key, val) = part.split_once('=')?;
            match key {
                "after" => after = Some(val.parse().ok()?),
                "ms" => ms = Some(val.parse().ok()?),
                "peer" => peer = Some(val.parse().ok()?),
                "node" => node = Some(val.parse().ok()?),
                _ => return None,
            }
        }
        if node.is_some_and(|n| n != self_node) {
            return None;
        }
        let kind = match kind_word {
            "drop" => TransportFaultKind::Drop,
            "stall" => TransportFaultKind::Stall(Duration::from_millis(ms?)),
            _ => return None,
        };
        Some(Self {
            peer,
            after_frames: after?,
            kind,
        })
    }
}

/// Configuration of one node process in a distributed run.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This process's node id (an index into `addrs`).
    pub node: usize,
    /// Every node's listen address, indexed by node id; `addrs[node]` is
    /// this process's own listener.
    pub addrs: Vec<SocketAddr>,
    /// Engine options for the local partition.
    pub engine: EngineConfig,
    /// How long to keep re-dialing a peer that has not started listening
    /// yet, how long to wait for higher-numbered peers to dial in, and the
    /// per-read deadline during the handshake.
    pub connect_timeout: Duration,
    /// Stamp outgoing `Data` frames with a payload checksum (effective only
    /// when the peer also advertises it; see [`WireConfig::negotiate`]).
    pub checksum: bool,
    /// Compress outgoing `Data` payloads when it wins (effective only when
    /// the peer also advertises it).
    pub compress: bool,
    /// Optional injected fault, for chaos tests.
    pub fault: Option<TransportFault>,
    /// A pre-bound listener for this node's own address. When set,
    /// [`run_node`] accepts higher-numbered peers on it instead of binding
    /// `addrs[node]` itself — closing the TOCTOU window between reserving
    /// a port (see [`reserve_loopback_listeners`]) and listening on it.
    pub listener: Option<Arc<TcpListener>>,
}

impl NodeConfig {
    /// A loopback configuration for `node` among `addrs`, with a 10 s
    /// connect timeout, checksums and compression off, and the fault taken
    /// from the environment.
    pub fn new(node: usize, addrs: Vec<SocketAddr>) -> Self {
        Self {
            node,
            addrs,
            engine: EngineConfig::default(),
            connect_timeout: Duration::from_secs(10),
            checksum: false,
            compress: false,
            fault: TransportFault::from_env(node),
            listener: None,
        }
    }
}

/// Reserves `n` distinct loopback addresses by binding ephemeral listeners
/// and **keeping them bound**: each returned listener is handed to its
/// node's [`NodeConfig::listener`], so the port can never be stolen between
/// reservation and use. This is the race-free replacement for
/// [`free_loopback_addrs`].
///
/// # Errors
/// Propagates the bind failure.
pub fn reserve_loopback_listeners(
    n: usize,
) -> std::io::Result<(Vec<SocketAddr>, Vec<Arc<TcpListener>>)> {
    let listeners: Vec<Arc<TcpListener>> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").map(Arc::new))
        .collect::<Result<_, _>>()?;
    let addrs = listeners
        .iter()
        .map(|l| l.local_addr())
        .collect::<Result<_, _>>()?;
    Ok((addrs, listeners))
}

/// Reserves `n` distinct loopback addresses by binding ephemeral listeners
/// and collecting their ports.
///
/// The listeners are dropped before returning, so a raced process *can*
/// steal a port before the node binds it. In-process callers should use
/// [`reserve_loopback_listeners`] instead; this helper remains only for
/// multi-process launches, where the listener cannot cross the `exec`
/// boundary — such callers must treat a child's bind failure as retryable
/// with fresh ports (as `h4d launch` does).
///
/// # Errors
/// Propagates the bind failure.
pub fn free_loopback_addrs(n: usize) -> std::io::Result<Vec<SocketAddr>> {
    let (addrs, _listeners) = reserve_loopback_listeners(n)?;
    Ok(addrs)
}

/// Route key on the wire: `(stream index, destination)` where destination
/// is a global consumer copy index or [`SHARED_QUEUE`].
type RouteKey = (u32, u32);

/// Flush the writer's batch once it holds this many bytes even if more
/// frames are ready, bounding coalescing latency and memory.
const FLUSH_BYTES: usize = 1 << 20;

/// Data payloads up to this size are copied into the batch's coalescing
/// segment; larger ones become their own vectored-write segment (moved, not
/// copied).
const INLINE_PAYLOAD_MAX: usize = 4096;

/// The initial per-route credit window the sender assumes and the receiver
/// honors: both sides derive it independently from the stream's declared
/// channel capacity, so no window negotiation is needed.
fn route_window(capacity: usize) -> u32 {
    u32::try_from(capacity.saturating_mul(2))
        .unwrap_or(MAX_CREDIT_GRANT)
        .clamp(4, MAX_CREDIT_GRANT)
}

/// What an injector needs to feed one route's buffers locally.
struct RouteIn {
    port: usize,
    tx: Sender<Msg>,
    meter: Arc<crate::metrics::StreamMeter>,
}

/// How a locally recorded transport error was detected — the precedence
/// class of the root-cause merge.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ErrClass {
    /// Detected on this node: socket loss, decode failure, injected drop.
    Local,
    /// Reported by a peer via an `Error` frame; carries the frame's origin.
    Remote,
}

/// State shared between the engine partition and the transport threads.
struct Shared {
    node: usize,
    failed: Arc<AtomicBool>,
    /// First-writer-wins origin hint for outgoing `Error` frames: the node
    /// this process believes the failure started on. `u64::MAX` = unset.
    origin_hint: AtomicU64,
    errors: Mutex<Vec<(ErrClass, usize, FilterError)>>,
}

impl Shared {
    fn new(node: usize) -> Self {
        Self {
            node,
            failed: Arc::new(AtomicBool::new(false)),
            origin_hint: AtomicU64::new(u64::MAX),
            errors: Mutex::new(Vec::new()),
        }
    }

    /// Records a transport error and raises the run-level failure flag
    /// **before** any caller-side channel teardown, preserving the
    /// engine's flag-before-disconnect discipline across processes.
    fn record(&self, class: ErrClass, origin: usize, err: FilterError) {
        let _ = self.origin_hint.compare_exchange(
            u64::MAX,
            origin as u64,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        // Poison recovery: error recording must survive a panicking
        // sibling thread — in a daemon, one wrecked run must never take
        // the recorder down with a lock panic.
        self.errors
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((class, origin, err));
        self.failed.store(true, Ordering::SeqCst);
    }

    /// The origin id and message an outgoing `Error` frame should carry.
    fn outgoing_error(&self) -> (u32, String) {
        let hint = self.origin_hint.load(Ordering::SeqCst);
        let origin = if hint == u64::MAX {
            self.node
        } else {
            hint as usize
        };
        let message = self
            .errors
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .first()
            .map(|(_, _, e)| e.to_string())
            .unwrap_or_else(|| format!("run failed on node {}", self.node));
        (origin as u32, message)
    }
}

/// Per-connection transport counters, shared between the writer and reader
/// threads and harvested into the [`RunOutcome`] after the join.
struct ConnStats {
    peer: usize,
    wire: WireConfig,
    frames_sent: AtomicU64,
    bytes_sent: AtomicU64,
    flushes: AtomicU64,
    frames_recv: AtomicU64,
    bytes_recv: AtomicU64,
    credits_sent: AtomicU64,
    credit_stalls: AtomicU64,
    compressed_frames: AtomicU64,
    compression_saved: AtomicU64,
}

impl ConnStats {
    fn new(peer: usize, wire: WireConfig) -> Self {
        Self {
            peer,
            wire,
            frames_sent: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            frames_recv: AtomicU64::new(0),
            bytes_recv: AtomicU64::new(0),
            credits_sent: AtomicU64::new(0),
            credit_stalls: AtomicU64::new(0),
            compressed_frames: AtomicU64::new(0),
            compression_saved: AtomicU64::new(0),
        }
    }

    fn report(&self) -> ConnectionReport {
        ConnectionReport {
            peer: self.peer,
            checksum: self.wire.checksum,
            compression: self.wire.compress,
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            frames_recv: self.frames_recv.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
            credits_sent: self.credits_sent.load(Ordering::Relaxed),
            credit_stalls: self.credit_stalls.load(Ordering::Relaxed),
            compressed_frames: self.compressed_frames.load(Ordering::Relaxed),
            compression_saved_bytes: self.compression_saved.load(Ordering::Relaxed),
        }
    }
}

fn io_filter_error(msg: String) -> FilterError {
    FilterError::new(FilterErrorKind::Io, msg)
}

/// Validates everything [`run_graph_partition`] would reject, plus the
/// distributed-only constraints, *before* any transport thread spawns.
///
/// This is load-bearing for liveness, not just early diagnostics: the
/// engine's early-return paths fire before its failure flag is armed, so a
/// post-handshake engine rejection would let the writers translate the
/// resulting channel teardown into clean `Eos` frames and peers would
/// happily complete on truncated data. Rejecting here, before the
/// handshake, means the peer instead times out dialing — a loud, typed
/// failure.
fn prevalidate(
    spec: &GraphSpec,
    factories: &HashMap<String, FilterFactory>,
    cfg: &NodeConfig,
) -> Result<(), FilterError> {
    spec.validate()
        .map_err(|e| FilterError::engine(format!("invalid graph: {e}")))?;
    let nodes = cfg.addrs.len();
    if nodes == 0 {
        return Err(FilterError::engine("no node addresses configured"));
    }
    if cfg.node >= nodes {
        return Err(FilterError::engine(format!(
            "node id {} out of range for {nodes} configured addresses",
            cfg.node
        )));
    }
    for f in &spec.filters {
        if !factories.contains_key(&f.name) {
            return Err(FilterError::engine(format!(
                "no factory for filter {:?}",
                f.name
            )));
        }
        if f.placement.len() != f.copies {
            return Err(FilterError::engine(format!(
                "distributed run requires full placement: filter {:?} places {} of {} copies",
                f.name,
                f.placement.len(),
                f.copies
            )));
        }
        if let Some(&bad) = f.placement.iter().find(|&&n| n >= nodes) {
            return Err(FilterError::engine(format!(
                "filter {:?} placed on node {bad}, but only {nodes} nodes are configured",
                f.name
            )));
        }
    }
    for s in &spec.streams {
        if !s.policy.uses_private_queues() {
            let cdecl = spec.filter_decl(&s.to).expect("validated");
            if cdecl.placement.windows(2).any(|w| w[0] != w[1]) {
                return Err(FilterError::engine(format!(
                    "demand-driven stream {:?} requires all copies of {:?} on one node",
                    s.name, s.to
                )));
            }
        }
    }
    Ok(())
}

/// Dials peers below this node's id and accepts from peers above it,
/// exchanging and checking `Hello` frames. Returns one connected, verified
/// stream per peer, keyed by peer id, paired with the negotiated frame
/// options (the intersection of both sides' advertised features).
///
/// The accept side polls a non-blocking listener against
/// `cfg.connect_timeout`, so a higher-numbered peer that never launches
/// yields a typed `Io` error naming every still-missing node instead of
/// blocking in `accept()` forever.
fn connect_mesh(
    cfg: &NodeConfig,
    digest: u64,
) -> Result<HashMap<usize, (TcpStream, WireConfig)>, FilterError> {
    let nodes = cfg.addrs.len();
    let me = cfg.node;
    let want = WireConfig {
        checksum: cfg.checksum,
        compress: cfg.compress,
    };
    let hello = Frame::Hello {
        version: WIRE_VERSION,
        node: me as u32,
        digest,
        features: want.features(),
    };
    let check_hello = |frame: Option<Frame>, who: &str| -> Result<(u32, u32), FilterError> {
        match frame {
            Some(Frame::Hello {
                version,
                node,
                digest: d,
                features,
            }) => {
                if version != WIRE_VERSION {
                    return Err(io_filter_error(format!(
                        "handshake with {who}: protocol version {version} != {WIRE_VERSION} \
                         (all nodes must run the same h4d build)"
                    )));
                }
                if d != digest {
                    return Err(io_filter_error(format!(
                        "handshake with {who}: graph digest mismatch \
                         (peers must run the same spec and node count)"
                    )));
                }
                Ok((node, features))
            }
            Some(_) => Err(io_filter_error(format!(
                "handshake with {who}: first frame was not Hello"
            ))),
            None => Err(io_filter_error(format!(
                "handshake with {who}: connection closed before Hello"
            ))),
        }
    };

    let mut peers: HashMap<usize, (TcpStream, WireConfig)> = HashMap::new();
    // Dial every lower-numbered peer, retrying until its listener is up.
    for peer in 0..me {
        let deadline = Instant::now() + cfg.connect_timeout;
        let mut stream = loop {
            match TcpStream::connect(cfg.addrs[peer]) {
                Ok(s) => break s,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    return Err(io_filter_error(format!(
                        "could not connect to node {peer} at {}: {e}",
                        cfg.addrs[peer]
                    )));
                }
            }
        };
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(cfg.connect_timeout)).ok();
        write_frame(&mut stream, &hello)
            .map_err(|e| io_filter_error(format!("handshake send to node {peer} failed: {e}")))?;
        let got = read_frame(&mut stream)
            .map_err(|e| io_filter_error(format!("handshake with node {peer} failed: {e}")))?;
        let (said, feats) = check_hello(got, &format!("node {peer}"))?;
        if said as usize != peer {
            return Err(io_filter_error(format!(
                "dialed node {peer} but it identified as node {said}"
            )));
        }
        stream.set_read_timeout(None).ok();
        peers.insert(peer, (stream, want.negotiate(feats)));
    }
    // Accept every higher-numbered peer; the Hello tells us which one. The
    // listener is non-blocking and polled against the same deadline the
    // dial side uses, so an absent peer is a typed timeout, not a hang.
    if me + 1 < nodes {
        // A pre-bound listener (reserve_loopback_listeners) wins: the port
        // was never released, so there is no window for another process to
        // steal it between reservation and this point.
        let listener = match &cfg.listener {
            Some(l) => Arc::clone(l),
            None => Arc::new(TcpListener::bind(cfg.addrs[me]).map_err(|e| {
                io_filter_error(format!("could not listen on {}: {e}", cfg.addrs[me]))
            })?),
        };
        listener
            .set_nonblocking(true)
            .map_err(|e| io_filter_error(format!("could not poll listener: {e}")))?;
        let deadline = Instant::now() + cfg.connect_timeout;
        while peers.len() < nodes - 1 {
            let (mut stream, from) = match listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        let missing: Vec<String> = (me + 1..nodes)
                            .filter(|p| !peers.contains_key(p))
                            .map(|p| format!("node {p}"))
                            .collect();
                        return Err(io_filter_error(format!(
                            "timed out after {:?} waiting for {} to connect",
                            cfg.connect_timeout,
                            missing.join(", ")
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_filter_error(format!("accept failed: {e}"))),
            };
            // Accepted sockets can inherit the listener's non-blocking mode;
            // the handshake below wants plain blocking reads with a timeout.
            stream
                .set_nonblocking(false)
                .map_err(|e| io_filter_error(format!("accept failed: {e}")))?;
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(cfg.connect_timeout)).ok();
            let got = read_frame(&mut stream)
                .map_err(|e| io_filter_error(format!("handshake from {from} failed: {e}")))?;
            let (said, feats) = check_hello(got, &format!("{from}"))?;
            let said = said as usize;
            if said <= me || said >= nodes || peers.contains_key(&said) {
                return Err(io_filter_error(format!(
                    "unexpected or duplicate peer id {said} from {from}"
                )));
            }
            write_frame(&mut stream, &hello).map_err(|e| {
                io_filter_error(format!("handshake send to node {said} failed: {e}"))
            })?;
            stream.set_read_timeout(None).ok();
            peers.insert(said, (stream, want.negotiate(feats)));
        }
    }
    Ok(peers)
}

/// Control messages flowing into a writer thread from its connection's
/// reader and injector.
enum WriterCtl {
    /// The injector delivered buffers locally; ask the writer to send the
    /// peer a `Credit` frame replenishing its window for `key`.
    Grant { key: RouteKey, credits: u32 },
    /// The reader saw a `Credit` frame from the peer; widen the writer's
    /// own send window for `key`. A grant of [`MAX_CREDIT_GRANT`] marks the
    /// route permanently unthrottled (the peer closed it early and will
    /// drop further frames, so blocking on credits could deadlock).
    Window { key: RouteKey, credits: u32 },
}

/// Events flowing from a reader thread into its connection's injector.
enum Inject {
    /// One routed data frame (payload still codec-encoded).
    Data {
        key: RouteKey,
        tag: u64,
        size: u64,
        ptype: u16,
        payload: Vec<u8>,
    },
    /// The peer finished a route cleanly.
    Eos { key: RouteKey },
    /// The peer reported a failed run (already recorded by the reader);
    /// tear down all routes but keep draining.
    Fail,
    /// The socket closed: `clean` at a frame boundary, otherwise after an
    /// error the reader already recorded.
    Closed { clean: bool },
}

/// A batch of encoded frames awaiting one vectored flush. Control frames
/// and small payloads coalesce into shared segments; payloads above
/// [`INLINE_PAYLOAD_MAX`] are moved in as their own segment so large
/// buffers are never re-copied.
struct FrameBatch {
    segments: Vec<Vec<u8>>,
    bytes: usize,
    tail_open: bool,
}

impl FrameBatch {
    fn new() -> Self {
        Self {
            segments: Vec::new(),
            bytes: 0,
            tail_open: false,
        }
    }

    fn tail(&mut self) -> &mut Vec<u8> {
        if !self.tail_open {
            self.segments.push(Vec::with_capacity(8 * 1024));
            self.tail_open = true;
        }
        self.segments.last_mut().expect("tail segment exists")
    }

    fn push_data(&mut self, header: Vec<u8>, body: Vec<u8>) {
        self.bytes += header.len() + body.len();
        if body.len() > INLINE_PAYLOAD_MAX {
            self.tail().extend_from_slice(&header);
            self.segments.push(body);
            self.tail_open = false;
        } else {
            let t = self.tail();
            t.extend_from_slice(&header);
            t.extend_from_slice(&body);
        }
    }

    fn push_control(&mut self, frame: &Frame) {
        let t = self.tail();
        let before = t.len();
        if write_frame(t, frame).is_err() {
            // Only an over-long Error message can fail encoding to memory;
            // drop the frame rather than ship a torn one.
            t.truncate(before);
        }
        let after = t.len();
        self.bytes += after - before;
    }

    /// Writes every queued segment with `write_vectored` and clears the
    /// batch. One call here is the only syscall path for data, EOS, error,
    /// and credit frames alike.
    fn flush(&mut self, stream: &mut TcpStream, stats: &ConnStats) -> std::io::Result<()> {
        if self.bytes == 0 {
            self.segments.clear();
            self.tail_open = false;
            return Ok(());
        }
        let total = self.bytes;
        let mut segs: VecDeque<&[u8]> = self
            .segments
            .iter()
            .filter(|s| !s.is_empty())
            .map(Vec::as_slice)
            .collect();
        let mut first_off = 0usize;
        while let Some(first) = segs.front() {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(segs.len());
            slices.push(IoSlice::new(&first[first_off..]));
            slices.extend(segs.iter().skip(1).map(|s| IoSlice::new(s)));
            let mut n = stream.write_vectored(&slices)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "failed to write batched frames",
                ));
            }
            while n > 0 {
                let avail = segs.front().expect("bytes remain").len() - first_off;
                if n >= avail {
                    n -= avail;
                    segs.pop_front();
                    first_off = 0;
                } else {
                    first_off += n;
                    n = 0;
                }
            }
        }
        self.segments.clear();
        self.tail_open = false;
        self.bytes = 0;
        stats.flushes.fetch_add(1, Ordering::Relaxed);
        stats.bytes_sent.fetch_add(total as u64, Ordering::Relaxed);
        Ok(())
    }
}

/// Everything one writer thread owns, bundled so the spawn site stays
/// readable.
struct WriterSide {
    stream: TcpStream,
    peer: usize,
    /// Route keys, parallel to `rxs` and `init_credit`.
    keys: Vec<RouteKey>,
    rxs: Vec<Receiver<Msg>>,
    init_credit: Vec<u32>,
    /// Run-end watch: nothing is ever sent; disconnection (after the engine
    /// returns) releases a writer whose routes are all quiet.
    watch_rx: Receiver<Msg>,
    ctl_rx: Receiver<WriterCtl>,
    codec: Arc<PayloadCodec>,
    shared: Arc<Shared>,
    fault: Option<TransportFault>,
    wire: WireConfig,
    stats: Arc<ConnStats>,
}

fn die_io(stream: &TcpStream, shared: &Shared, peer: usize, e: &std::io::Error) {
    shared.record(
        ErrClass::Local,
        peer,
        io_filter_error(format!("lost connection to node {peer}: {e}")),
    );
    let _ = stream.shutdown(Shutdown::Both);
}

fn fail_exit(batch: &mut FrameBatch, stream: &mut TcpStream, shared: &Shared, stats: &ConnStats) {
    // One Error frame, then close the write half. Dropping the route
    // receivers (by returning) wakes any producer blocked on a full
    // uplink with a DownstreamClosed disconnect.
    let (origin, message) = shared.outgoing_error();
    batch.push_control(&Frame::Error { origin, message });
    let _ = batch.flush(stream, stats);
    let _ = stream.shutdown(Shutdown::Write);
}

/// Per-peer TCP writer: drains every uplink channel routed to `peer` each
/// wakeup, coalescing all ready frames (and pending credit grants) into one
/// vectored flush, gated per route by the credit window the peer's injector
/// replenishes. Channel disconnection becomes `Eos` (clean) or one `Error`
/// frame (failed run); the injected fault applies here.
#[allow(clippy::too_many_lines)]
fn writer_thread(side: WriterSide) {
    let WriterSide {
        mut stream,
        peer,
        keys,
        rxs,
        init_credit,
        watch_rx,
        ctl_rx,
        codec,
        shared,
        fault,
        wire,
        stats,
    } = side;
    let fault = fault.filter(|f| f.peer.is_none() || f.peer == Some(peer));
    let n = keys.len();
    let mut credit = init_credit;
    let mut open = vec![true; n];
    let mut unthrottled = vec![false; n];
    let mut watch_open = true;
    let mut ctl_open = true;
    // Once the run is over (watch dropped) or the credit path is gone (ctl
    // dropped), stop enforcing windows and fall back to TCP backpressure:
    // at that point no refill can ever arrive, so blocking would deadlock.
    let mut drain_all = false;
    let mut sel_dirty = true;
    let mut pending_grants: HashMap<RouteKey, u32> = HashMap::new();
    let mut frames_sent = 0u64;
    let mut batch = FrameBatch::new();
    let mut sel = Select::new();
    loop {
        // Phase 1: sweep every input until a full pass makes no progress.
        loop {
            let mut progress = false;
            // Control: credit grants to emit, window refills from the peer.
            loop {
                match ctl_rx.try_recv() {
                    Ok(WriterCtl::Grant { key, credits }) => {
                        progress = true;
                        let e = pending_grants.entry(key).or_insert(0);
                        *e = e.saturating_add(credits).min(MAX_CREDIT_GRANT);
                    }
                    Ok(WriterCtl::Window { key, credits }) => {
                        progress = true;
                        if let Some(i) = keys.iter().position(|k| *k == key) {
                            if credits >= MAX_CREDIT_GRANT {
                                if !unthrottled[i] {
                                    unthrottled[i] = true;
                                    sel_dirty = true;
                                }
                            } else {
                                let was_zero = credit[i] == 0;
                                credit[i] = credit[i].saturating_add(credits).min(MAX_CREDIT_GRANT);
                                if was_zero && open[i] {
                                    sel_dirty = true;
                                }
                            }
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        if ctl_open {
                            ctl_open = false;
                            drain_all = true;
                            sel_dirty = true;
                            progress = true;
                        }
                        break;
                    }
                }
            }
            // Data routes, as far as each one's window allows.
            for i in 0..n {
                if !open[i] {
                    continue;
                }
                while drain_all || unthrottled[i] || credit[i] > 0 {
                    match rxs[i].try_recv() {
                        Ok(msg) => {
                            progress = true;
                            if let Some(f) = fault {
                                match f.kind {
                                    TransportFaultKind::Drop if frames_sent >= f.after_frames => {
                                        // Deliver what was batched so the
                                        // first `after_frames` frames land,
                                        // then die like a cut cable.
                                        let _ = batch.flush(&mut stream, &stats);
                                        shared.record(
                                            ErrClass::Local,
                                            peer,
                                            io_filter_error(format!(
                                                "injected transport fault: dropped connection to \
                                                 node {peer} after {frames_sent} frames"
                                            )),
                                        );
                                        let _ = stream.shutdown(Shutdown::Both);
                                        return;
                                    }
                                    TransportFaultKind::Stall(d)
                                        if frames_sent >= f.after_frames =>
                                    {
                                        std::thread::sleep(d);
                                    }
                                    _ => {}
                                }
                            }
                            let (ptype, payload) = match codec.encode(&msg.buf) {
                                Ok(enc) => enc,
                                Err(e) => {
                                    shared.record(
                                        ErrClass::Local,
                                        shared.node,
                                        io_filter_error(format!(
                                            "cannot send stream {} to node {peer}: {e}",
                                            keys[i].0
                                        )),
                                    );
                                    fail_exit(&mut batch, &mut stream, &shared, &stats);
                                    return;
                                }
                            };
                            let raw_len = payload.len();
                            let encoded = encode_data_frame(
                                keys[i].0,
                                keys[i].1,
                                msg.buf.tag(),
                                msg.buf.size_bytes() as u64,
                                ptype,
                                payload,
                                &wire,
                            );
                            let (header, body) = match encoded {
                                Ok(hb) => hb,
                                Err(e) => {
                                    shared.record(
                                        ErrClass::Local,
                                        shared.node,
                                        io_filter_error(format!(
                                            "cannot send stream {} to node {peer}: {e}",
                                            keys[i].0
                                        )),
                                    );
                                    fail_exit(&mut batch, &mut stream, &shared, &stats);
                                    return;
                                }
                            };
                            if body.len() < raw_len {
                                stats.compressed_frames.fetch_add(1, Ordering::Relaxed);
                                stats
                                    .compression_saved
                                    .fetch_add((raw_len - body.len()) as u64, Ordering::Relaxed);
                            }
                            batch.push_data(header, body);
                            frames_sent += 1;
                            stats.frames_sent.fetch_add(1, Ordering::Relaxed);
                            if !(drain_all || unthrottled[i]) {
                                credit[i] -= 1;
                                if credit[i] == 0 {
                                    sel_dirty = true;
                                }
                            }
                            if batch.bytes >= FLUSH_BYTES {
                                if let Err(e) = batch.flush(&mut stream, &stats) {
                                    die_io(&stream, &shared, peer, &e);
                                    return;
                                }
                            }
                        }
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            // Clean end-of-route, unless the run already
                            // failed — the flag is always raised before
                            // channels drop, so this cannot race to a
                            // false Eos.
                            if shared.failed.load(Ordering::SeqCst) {
                                fail_exit(&mut batch, &mut stream, &shared, &stats);
                                return;
                            }
                            progress = true;
                            open[i] = false;
                            sel_dirty = true;
                            batch.push_control(&Frame::Eos {
                                stream: keys[i].0,
                                dest: keys[i].1,
                            });
                            break;
                        }
                    }
                }
            }
            // Run-end watch.
            match watch_rx.try_recv() {
                Ok(_) | Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => {
                    if watch_open {
                        if shared.failed.load(Ordering::SeqCst) {
                            fail_exit(&mut batch, &mut stream, &shared, &stats);
                            return;
                        }
                        watch_open = false;
                        drain_all = true;
                        sel_dirty = true;
                        progress = true;
                    }
                }
            }
            // Coalesced credit grants ride along with whatever data is
            // batched (progress was already marked when they arrived).
            for (key, credits) in pending_grants.drain() {
                batch.push_control(&Frame::Credit {
                    stream: key.0,
                    dest: key.1,
                    credits: credits.clamp(1, MAX_CREDIT_GRANT),
                });
                stats.credits_sent.fetch_add(1, Ordering::Relaxed);
            }
            if !progress {
                break;
            }
        }
        // Phase 2: one vectored flush for the whole sweep.
        if let Err(e) = batch.flush(&mut stream, &stats) {
            die_io(&stream, &shared, peer, &e);
            return;
        }
        if !watch_open && open.iter().all(|o| !o) {
            break;
        }
        // Phase 3: block until any input is ready. Routes out of credit are
        // left out of the select (their wakeup is a Window refill on the
        // control channel); count them as stalls when they had data ready.
        for i in 0..n {
            if open[i] && !drain_all && !unthrottled[i] && credit[i] == 0 && !rxs[i].is_empty() {
                stats.credit_stalls.fetch_add(1, Ordering::Relaxed);
            }
        }
        if sel_dirty {
            sel = Select::new();
            for i in 0..n {
                if open[i] && (drain_all || unthrottled[i] || credit[i] > 0) {
                    sel.recv(&rxs[i]);
                }
            }
            if watch_open {
                sel.recv(&watch_rx);
            }
            if ctl_open {
                sel.recv(&ctl_rx);
            }
            sel_dirty = false;
        }
        // `ready` (not `select`) — the sweep re-polls everything, so the
        // woken operation needs no completion and spurious wakeups are
        // harmless.
        let _ = sel.ready();
    }
    let _ = stream.shutdown(Shutdown::Write);
}

/// Per-peer TCP reader: a thin decode loop that forwards data/EOS/error
/// events to the connection's injector and peer credit grants to its
/// writer, so a slow consumer queue can never stop the socket from being
/// drained (which is what keeps credit frames flowing).
fn reader_thread(
    mut stream: TcpStream,
    peer: usize,
    inj_tx: Sender<Inject>,
    ctl_tx: Sender<WriterCtl>,
    shared: Arc<Shared>,
    stats: Arc<ConnStats>,
) {
    loop {
        match read_frame(&mut stream) {
            Ok(Some(Frame::Data {
                stream: si,
                dest,
                tag,
                size,
                ptype,
                payload,
            })) => {
                stats.frames_recv.fetch_add(1, Ordering::Relaxed);
                // Logical (verified, decompressed) bytes — the app-level
                // view; `bytes_sent` on the peer counts wire bytes.
                stats
                    .bytes_recv
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                let _ = inj_tx.send(Inject::Data {
                    key: (si, dest),
                    tag,
                    size,
                    ptype,
                    payload,
                });
            }
            Ok(Some(Frame::Credit {
                stream: si,
                dest,
                credits,
            })) => {
                let _ = ctl_tx.send(WriterCtl::Window {
                    key: (si, dest),
                    credits,
                });
            }
            Ok(Some(Frame::Eos { stream: si, dest })) => {
                let _ = inj_tx.send(Inject::Eos { key: (si, dest) });
            }
            Ok(Some(Frame::Error { origin, message })) => {
                // Record BEFORE the injector drops its senders so local
                // consumers that observe the disconnect are guaranteed to
                // see the run-level flag (mirrors the engine's ordering).
                shared.record(
                    ErrClass::Remote,
                    origin as usize,
                    io_filter_error(format!("peer node {origin} failed: {message}")),
                );
                let _ = inj_tx.send(Inject::Fail);
            }
            Ok(Some(Frame::Hello { .. })) => {
                shared.record(
                    ErrClass::Local,
                    peer,
                    io_filter_error(format!("unexpected mid-run Hello from node {peer}")),
                );
                let _ = inj_tx.send(Inject::Fail);
                let _ = inj_tx.send(Inject::Closed { clean: false });
                return;
            }
            Ok(None) => {
                let _ = inj_tx.send(Inject::Closed { clean: true });
                return;
            }
            Err(e) => {
                shared.record(
                    ErrClass::Local,
                    peer,
                    io_filter_error(format!("transport read from node {peer}: {e}")),
                );
                let _ = inj_tx.send(Inject::Closed { clean: false });
                return;
            }
        }
    }
}

/// Injector state for one connection: the local route map plus per-route
/// staging for buffers whose consumer queue was full at arrival time.
struct Injector {
    peer: usize,
    routes: HashMap<RouteKey, RouteIn>,
    staged: HashMap<RouteKey, VecDeque<Msg>>,
    /// Routes whose `Eos` arrived while buffers were still staged; finalize
    /// once the stage drains.
    eos_pending: HashSet<RouteKey>,
    ctl_tx: Sender<WriterCtl>,
    codec: Arc<PayloadCodec>,
    shared: Arc<Shared>,
}

/// What [`Injector::handle`] tells the event loop.
enum Flow {
    Continue,
    Closed { clean: bool },
}

/// What the injector's blocking select resolved to.
enum Act {
    Ev(Inject),
    Hangup,
    Sent { key: RouteKey, bytes: u64 },
    SendFailed { key: RouteKey },
}

impl Injector {
    fn grant(&self, key: RouteKey, credits: u32) {
        // The writer may already be gone on failure paths; grants are then
        // moot anyway.
        let _ = self.ctl_tx.send(WriterCtl::Grant { key, credits });
    }

    fn teardown(&mut self) {
        self.routes.clear();
        self.staged.clear();
        self.eos_pending.clear();
    }

    /// The local consumer vanished before the route's `Eos`: drop the route
    /// and lift the peer's window permanently so its producers never block
    /// on credits for frames that will now simply be discarded on arrival.
    fn close_early(&mut self, key: RouteKey) {
        self.routes.remove(&key);
        self.staged.remove(&key);
        if !self.eos_pending.remove(&key) {
            self.grant(key, MAX_CREDIT_GRANT);
        }
    }

    /// Clean end of route: dropping the sender clone is the consumer's EOS.
    fn finalize(&mut self, key: RouteKey) {
        self.routes.remove(&key);
        self.staged.remove(&key);
        self.eos_pending.remove(&key);
    }

    fn handle(&mut self, ev: Inject) -> Flow {
        match ev {
            Inject::Data {
                key,
                tag,
                size,
                ptype,
                payload,
            } => {
                // One route lookup up front: everything below is driven by
                // remote input, so a missing route is handled by dropping
                // the frame (route already closed locally), never by
                // panicking on a violated "checked above" assumption.
                let Some((port, tx, meter)) = self
                    .routes
                    .get(&key)
                    .map(|r| (r.port, r.tx.clone(), r.meter.clone()))
                else {
                    return Flow::Continue;
                };
                let buf: DataBuffer = match self.codec.decode(ptype, &payload, size as usize, tag) {
                    Ok(b) => b,
                    Err(e) => {
                        let peer = self.peer;
                        self.shared.record(
                            ErrClass::Local,
                            peer,
                            io_filter_error(format!(
                                "undecodable frame from node {peer} on stream {}: {e}",
                                key.0
                            )),
                        );
                        self.teardown();
                        return Flow::Continue;
                    }
                };
                if let Some(q) = self.staged.get_mut(&key) {
                    if !q.is_empty() {
                        // Keep arrival order: behind staged buffers, stage.
                        q.push_back(Msg { port, buf });
                        return Flow::Continue;
                    }
                }
                let bytes = buf.size_bytes() as u64;
                match tx.try_send(Msg { port, buf }) {
                    Ok(()) => {
                        meter.record(bytes, tx.len());
                        self.grant(key, 1);
                    }
                    Err(TrySendError::Full(m)) => {
                        self.staged.entry(key).or_default().push_back(m);
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        self.close_early(key);
                    }
                }
                Flow::Continue
            }
            Inject::Eos { key } => {
                if self.routes.contains_key(&key) {
                    if self.staged.get(&key).is_some_and(|q| !q.is_empty()) {
                        self.eos_pending.insert(key);
                    } else {
                        self.finalize(key);
                    }
                }
                Flow::Continue
            }
            Inject::Fail => {
                // The reader recorded the failure (raising the flag) before
                // sending this, so dropping the senders here keeps the
                // flag-before-disconnect ordering.
                self.teardown();
                Flow::Continue
            }
            Inject::Closed { clean } => Flow::Closed { clean },
        }
    }

    /// Moves staged heads into their consumer queues without blocking.
    /// Returns whether anything moved.
    fn pump_staged(&mut self) -> bool {
        let keys: Vec<RouteKey> = self.staged.keys().copied().collect();
        let mut moved = false;
        for key in keys {
            loop {
                let Some(msg) = self.staged.get_mut(&key).and_then(VecDeque::pop_front) else {
                    break;
                };
                let Some((tx, meter)) = self
                    .routes
                    .get(&key)
                    .map(|r| (r.tx.clone(), r.meter.clone()))
                else {
                    self.staged.remove(&key);
                    break;
                };
                let bytes = msg.buf.size_bytes() as u64;
                match tx.try_send(msg) {
                    Ok(()) => {
                        meter.record(bytes, tx.len());
                        moved = true;
                        if !self.eos_pending.contains(&key) {
                            self.grant(key, 1);
                        }
                    }
                    Err(TrySendError::Full(m)) => {
                        self.staged.entry(key).or_default().push_front(m);
                        break;
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        self.close_early(key);
                        break;
                    }
                }
            }
            if self.eos_pending.contains(&key) && self.staged.get(&key).is_none_or(|q| q.is_empty())
            {
                self.finalize(key);
            }
        }
        moved
    }

    /// Post-close blocking drain: the socket is gone, every surviving route
    /// has its `Eos`, so push what is staged with ordinary blocking sends
    /// (no credits — there is no one left to grant to) and finish.
    fn drain_staged_blocking(&mut self) {
        let keys: Vec<RouteKey> = self.staged.keys().copied().collect();
        for key in keys {
            let Some(q) = self.staged.remove(&key) else {
                continue;
            };
            if let Some(r) = self.routes.get(&key) {
                for msg in q {
                    let bytes = msg.buf.size_bytes() as u64;
                    if r.tx.send(msg).is_err() {
                        break;
                    }
                    r.meter.record(bytes, r.tx.len());
                }
            }
        }
        self.routes.clear();
        self.eos_pending.clear();
    }

    /// The reader reported the socket closed (or vanished): a clean close
    /// with routes still missing their `Eos` is a peer loss; otherwise
    /// drain whatever is staged and finish.
    fn on_closed(&mut self, clean: bool) {
        let lost = self.routes.keys().any(|k| !self.eos_pending.contains(k));
        if lost {
            if clean {
                let peer = self.peer;
                self.shared.record(
                    ErrClass::Local,
                    peer,
                    io_filter_error(format!("lost connection to node {peer}")),
                );
            }
            // Unclean closes were already recorded by the reader.
            self.teardown();
        } else {
            self.drain_staged_blocking();
        }
    }
}

/// Per-connection injector: owns the route map, decodes payloads, feeds
/// consumer queues, and grants credits. Stages buffers for a full consumer
/// queue instead of blocking, so the other routes on the connection keep
/// flowing — the credit window bounds how much can pile up per route.
fn injector_thread(
    peer: usize,
    routes_rx: Receiver<HashMap<RouteKey, RouteIn>>,
    arrivals: Receiver<Inject>,
    ctl_tx: Sender<WriterCtl>,
    codec: Arc<PayloadCodec>,
    shared: Arc<Shared>,
) {
    // Routes arrive via the engine's injector handoff; a dropped sender
    // means the run aborted before spawning, in which case we still drain
    // events so the reader (and through it the peer) is never wedged.
    let routes = routes_rx.recv().unwrap_or_default();
    let mut inj = Injector {
        peer,
        routes,
        staged: HashMap::new(),
        eos_pending: HashSet::new(),
        ctl_tx,
        codec,
        shared,
    };
    loop {
        // Non-blocking sweep: arrivals, then staged heads, until quiet.
        loop {
            let mut progress = false;
            loop {
                match arrivals.try_recv() {
                    Ok(ev) => {
                        progress = true;
                        if let Flow::Closed { clean } = inj.handle(ev) {
                            inj.on_closed(clean);
                            return;
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        // Reader died without a Closed event; treat as a
                        // clean-at-boundary close so live routes still
                        // count as lost.
                        inj.on_closed(true);
                        return;
                    }
                }
            }
            if inj.pump_staged() {
                progress = true;
            }
            if !progress {
                break;
            }
        }
        // Block until an event arrives or a staged head becomes sendable.
        let sendable: Vec<(RouteKey, Sender<Msg>)> = inj
            .staged
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .filter_map(|(k, _)| inj.routes.get(k).map(|r| (*k, r.tx.clone())))
            .collect();
        let act = {
            let mut sel = Select::new();
            let arr_at = sel.recv(&arrivals);
            for (_, tx) in &sendable {
                sel.send(tx);
            }
            let op = sel.select();
            let at = op.index();
            if at == arr_at {
                match op.recv(&arrivals) {
                    Ok(ev) => Act::Ev(ev),
                    Err(_) => Act::Hangup,
                }
            } else {
                let (key, tx) = &sendable[at - 1];
                // Local invariant, not remote-reachable: `sendable` was
                // snapshotted by this same thread moments ago with nothing
                // mutating `staged` in between, and a `SelectedOperation`
                // must be completed once taken.
                let msg = inj
                    .staged
                    .get_mut(key)
                    .and_then(VecDeque::pop_front)
                    .expect("sendable implies a staged head");
                let bytes = msg.buf.size_bytes() as u64;
                match op.send(tx, msg) {
                    Ok(()) => Act::Sent { key: *key, bytes },
                    Err(_) => Act::SendFailed { key: *key },
                }
            }
        };
        match act {
            Act::Ev(ev) => {
                if let Flow::Closed { clean } = inj.handle(ev) {
                    inj.on_closed(clean);
                    return;
                }
            }
            Act::Hangup => {
                inj.on_closed(true);
                return;
            }
            Act::Sent { key, bytes } => {
                if let Some(r) = inj.routes.get(&key) {
                    r.meter.record(bytes, r.tx.len());
                }
                if !inj.eos_pending.contains(&key) {
                    inj.grant(key, 1);
                }
                if inj.eos_pending.contains(&key)
                    && inj.staged.get(&key).is_none_or(|q| q.is_empty())
                {
                    inj.finalize(key);
                }
            }
            Act::SendFailed { key } => {
                inj.close_early(key);
            }
        }
    }
}

/// Destination keys of stream `si`: one `(wire key, node)` pair per
/// consumer queue — per consumer copy for private-queue policies, a single
/// [`SHARED_QUEUE`] entry for the demand-driven shared queue.
fn dest_keys(spec: &GraphSpec, si: usize) -> Vec<(u32, usize)> {
    let s = &spec.streams[si];
    let cdecl = spec.filter_decl(&s.to).expect("validated");
    if s.policy.uses_private_queues() {
        (0..cdecl.copies)
            .map(|c| (c as u32, cdecl.placement[c]))
            .collect()
    } else {
        vec![(SHARED_QUEUE, cdecl.placement[0])]
    }
}

/// Executes this node's partition of a placed graph, bridging cross-node
/// streams to the peer processes in `cfg.addrs` over TCP.
///
/// Blocks until the local partition has finished **and** every transport
/// thread has been joined; like [`crate::run_graph`], no thread outlives
/// the call. The returned [`RunOutcome`] / [`RunFailure`] covers this
/// node's copies only — a successful outcome additionally carries one
/// [`ConnectionReport`] per peer connection (frames, flushes, credits,
/// compression) — and root-cause selection extends the engine's kind
/// ordering with transport classes: a locally detected peer loss beats a
/// peer-reported failure (with the reporting echo of this node's own
/// failure demoted), and both beat the local engine error they caused.
///
/// # Errors
/// Pre-validation failures (graph, placement, factories), handshake
/// failures, or the merged root cause of a failed distributed run.
pub fn run_node(
    spec: &GraphSpec,
    factories: &mut HashMap<String, FilterFactory>,
    codec: Arc<PayloadCodec>,
    cfg: &NodeConfig,
) -> Result<RunOutcome, RunFailure> {
    prevalidate(spec, factories, cfg)?;
    let me = cfg.node;
    let spec_json = serde_json::to_vec(spec)
        .map_err(|e| FilterError::engine(format!("graph spec serialization failed: {e}")))?;
    let digest = spec_digest(&spec_json, cfg.addrs.len());
    let peers = connect_mesh(cfg, digest)?;
    let shared = Arc::new(Shared::new(me));

    // Build the cross-node routes. Uplinks (keyed for the engine) carry
    // locally produced buffers toward remote queues; reader route specs
    // name the remote-produced routes each peer will feed into us.
    let mut uplinks: HashMap<(usize, Option<usize>), Sender<Msg>> = HashMap::new();
    let mut writer_routes: HashMap<usize, Vec<(RouteKey, Receiver<Msg>)>> = HashMap::new();
    let mut reader_specs: HashMap<usize, Vec<RouteKey>> = HashMap::new();
    for si in 0..spec.streams.len() {
        let s = &spec.streams[si];
        let pdecl = spec.filter_decl(&s.from).expect("validated");
        let local_producer = pdecl.placement.iter().any(|&n| n == me);
        for (wire_dest, dnode) in dest_keys(spec, si) {
            if dnode != me && local_producer {
                let (tx, rx) = bounded::<Msg>(s.capacity);
                let dest = (wire_dest != SHARED_QUEUE).then_some(wire_dest as usize);
                uplinks.insert((si, dest), tx);
                writer_routes
                    .entry(dnode)
                    .or_default()
                    .push(((si as u32, wire_dest), rx));
            }
            if dnode == me {
                for &pnode in &pdecl.placement {
                    if pnode != me {
                        let spec_list = reader_specs.entry(pnode).or_default();
                        let key = (si as u32, wire_dest);
                        if !spec_list.contains(&key) {
                            spec_list.push(key);
                        }
                    }
                }
            }
        }
    }

    // Spawn a writer, a reader, and an injector per peer — even route-less
    // ones: a route-less writer lingers on the watch channel so a late
    // local failure still reaches every peer as an Error frame, and a
    // route-less reader/injector pair still drains Error frames and EOF.
    let mut handles = Vec::new();
    let mut watch_txs = Vec::new();
    let mut route_map_txs: Vec<(usize, Sender<HashMap<RouteKey, RouteIn>>)> = Vec::new();
    let mut conn_stats: Vec<Arc<ConnStats>> = Vec::new();
    let mut spawn_failure: Option<FilterError> = None;
    'conn: for (&peer, (stream, wire)) in &peers {
        let clone_err = |e: std::io::Error| {
            io_filter_error(format!("could not clone connection to node {peer}: {e}"))
        };
        let read_half = match stream.try_clone().map_err(clone_err) {
            Ok(h) => h,
            Err(e) => {
                spawn_failure = Some(e);
                break 'conn;
            }
        };
        let write_half = match stream.try_clone().map_err(clone_err) {
            Ok(h) => h,
            Err(e) => {
                spawn_failure = Some(e);
                break 'conn;
            }
        };
        let routes = writer_routes.remove(&peer).unwrap_or_default();
        let (keys, rxs): (Vec<RouteKey>, Vec<Receiver<Msg>>) = routes.into_iter().unzip();
        let init_credit: Vec<u32> = keys
            .iter()
            .map(|k| route_window(spec.streams[k.0 as usize].capacity))
            .collect();
        let (watch_tx, watch_rx) = bounded::<Msg>(1);
        watch_txs.push(watch_tx);
        let (map_tx, map_rx) = bounded::<HashMap<RouteKey, RouteIn>>(1);
        route_map_txs.push((peer, map_tx));
        let (ctl_tx, ctl_rx) = unbounded::<WriterCtl>();
        let (inj_tx, inj_rx) = unbounded::<Inject>();
        let stats = Arc::new(ConnStats::new(peer, *wire));
        conn_stats.push(stats.clone());
        let side = WriterSide {
            stream: write_half,
            peer,
            keys,
            rxs,
            init_credit,
            watch_rx,
            ctl_rx,
            codec: codec.clone(),
            shared: shared.clone(),
            fault: cfg.fault,
            wire: *wire,
            stats: stats.clone(),
        };
        match std::thread::Builder::new()
            .name(format!("{}-tx-{peer}", cfg.engine.thread_name_prefix))
            .spawn(move || writer_thread(side))
        {
            Ok(h) => handles.push(h),
            Err(e) => {
                spawn_failure = Some(FilterError::engine(format!("thread spawn failed: {e}")));
                break 'conn;
            }
        }
        let (r_shared, r_ctl) = (shared.clone(), ctl_tx.clone());
        match std::thread::Builder::new()
            .name(format!("{}-rx-{peer}", cfg.engine.thread_name_prefix))
            .spawn(move || reader_thread(read_half, peer, inj_tx, r_ctl, r_shared, stats))
        {
            Ok(h) => handles.push(h),
            Err(e) => {
                spawn_failure = Some(FilterError::engine(format!("thread spawn failed: {e}")));
                break 'conn;
            }
        }
        let (i_codec, i_shared) = (codec.clone(), shared.clone());
        match std::thread::Builder::new()
            .name(format!("{}-inj-{peer}", cfg.engine.thread_name_prefix))
            .spawn(move || injector_thread(peer, map_rx, inj_rx, ctl_tx, i_codec, i_shared))
        {
            Ok(h) => handles.push(h),
            Err(e) => {
                spawn_failure = Some(FilterError::engine(format!("thread spawn failed: {e}")));
                break 'conn;
            }
        }
    }
    if let Some(error) = spawn_failure {
        // Pre-PR-8 this was an early `?` return that left already-spawned
        // reader threads blocked forever on their (dup'd) sockets — fatal
        // for a daemon. Shut every socket so readers see EOF, release the
        // watch and route-map channels so writers and injectors exit, then
        // join whatever spawned before reporting.
        for (stream, _) in peers.values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        drop(route_map_txs);
        drop(watch_txs);
        drop(peers);
        for h in handles {
            let _ = h.join();
        }
        return Err(RunFailure::from(error));
    }
    drop(peers);

    // The handoff runs inside the engine after queue creation and before
    // any copy spawns: it slices the injector set into one route map per
    // peer and releases the injector threads.
    let handoff_specs = reader_specs;
    let handoff = Box::new(move |injectors: Vec<Option<StreamInjector>>| {
        for (peer, map_tx) in route_map_txs {
            let mut map = HashMap::new();
            for &(si, wire_dest) in handoff_specs.get(&peer).into_iter().flatten() {
                let Some(inj) = &injectors[si as usize] else {
                    continue;
                };
                let want = (wire_dest != SHARED_QUEUE).then_some(wire_dest as usize);
                if let Some((_, tx)) = inj.senders.iter().find(|(k, _)| *k == want) {
                    map.insert(
                        (si, wire_dest),
                        RouteIn {
                            port: inj.port,
                            tx: tx.clone(),
                            meter: inj.meter.clone(),
                        },
                    );
                }
            }
            let _ = map_tx.send(map);
        }
    });

    let partition = Partition {
        node: Some(me),
        uplinks,
        handoff: Some(handoff),
        failed: shared.failed.clone(),
    };
    let result = run_graph_partition(spec, factories, &cfg.engine, partition);

    // The engine has returned, so the local run's failure state is final:
    // release the watch channels (turning lingering writers loose) and
    // join every transport thread before reporting.
    drop(watch_txs);
    for h in handles {
        let _ = h.join();
    }
    let mut transport: Vec<ConnectionReport> = conn_stats.iter().map(|s| s.report()).collect();
    transport.sort_by_key(|r| r.peer);

    // Merge the transport view into the engine result. Precedence per
    // node: locally detected loss, then peer-reported failures that did
    // not originate here (echoes of our own failure must not shadow its
    // real local root), then the engine's own kind-selected root cause.
    let mut errors = shared
        .errors
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .drain(..)
        .collect::<Vec<_>>();
    let local_at = errors
        .iter()
        .position(|(class, _, _)| *class == ErrClass::Local);
    let remote_at = errors
        .iter()
        .position(|(class, origin, _)| *class == ErrClass::Remote && *origin != me);
    let root_at = local_at.or(remote_at);
    match result {
        Ok(mut outcome) => {
            outcome.transport = transport;
            match root_at {
                Some(at) => {
                    let (_, _, error) = errors.remove(at);
                    Err(RunFailure {
                        error,
                        secondary: errors.into_iter().map(|(_, _, e)| e).collect(),
                        stats: outcome.stats,
                    })
                }
                None => Ok(outcome),
            }
        }
        Err(mut failure) => {
            match root_at {
                Some(at) => {
                    let (_, _, error) = errors.remove(at);
                    let engine_root = std::mem::replace(&mut failure.error, error);
                    failure.secondary.insert(0, engine_root);
                    failure
                        .secondary
                        .extend(errors.into_iter().map(|(_, _, e)| e));
                }
                None => {
                    failure
                        .secondary
                        .extend(errors.into_iter().map(|(_, _, e)| e));
                }
            }
            Err(failure)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stub_factories(names: &[&str]) -> HashMap<String, FilterFactory> {
        names
            .iter()
            .map(|&n| {
                let f: FilterFactory = Box::new(|_| Err(FilterError::engine("stub factory")));
                (n.to_string(), f)
            })
            .collect()
    }

    #[test]
    fn fault_parsing_covers_both_kinds_and_selectors() {
        let f = TransportFault::parse("drop:after=5:peer=1", 0).unwrap();
        assert_eq!(f.peer, Some(1));
        assert_eq!(f.after_frames, 5);
        assert_eq!(f.kind, TransportFaultKind::Drop);

        let f = TransportFault::parse("stall:after=3:ms=250", 2).unwrap();
        assert_eq!(f.peer, None);
        assert_eq!(
            f.kind,
            TransportFaultKind::Stall(Duration::from_millis(250))
        );

        // Node selector: matches, filters, and is optional.
        assert!(TransportFault::parse("drop:after=0:node=1", 1).is_some());
        assert!(TransportFault::parse("drop:after=0:node=1", 0).is_none());

        // Malformed inputs degrade to no fault, never a panic.
        for bad in [
            "",
            "drop",
            "drop:after=x",
            "stall:after=1",
            "flood:after=1",
            "drop:after=1:bogus=2",
        ] {
            assert!(TransportFault::parse(bad, 0).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn free_loopback_addrs_are_distinct() {
        let addrs = free_loopback_addrs(4).unwrap();
        assert_eq!(addrs.len(), 4);
        for (i, a) in addrs.iter().enumerate() {
            assert!(a.ip().is_loopback());
            for b in &addrs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn prevalidation_requires_full_placement() {
        // With factories present, an unplaced graph must trip the
        // placement check itself.
        let spec = crate::GraphSpec::new()
            .filter("a", 1)
            .filter("b", 1)
            .stream("s", "a", "b", crate::SchedulePolicy::RoundRobin);
        let factories = stub_factories(&["a", "b"]);
        let cfg = NodeConfig::new(0, free_loopback_addrs(2).unwrap());
        let err = prevalidate(&spec, &factories, &cfg).unwrap_err();
        assert!(err.message().contains("full placement"), "{err}");
    }

    #[test]
    fn prevalidation_reports_missing_factories_first() {
        let spec = crate::GraphSpec::new()
            .filter("a", 1)
            .filter("b", 1)
            .stream("s", "a", "b", crate::SchedulePolicy::RoundRobin);
        let factories = HashMap::new();
        let cfg = NodeConfig::new(0, free_loopback_addrs(2).unwrap());
        let err = prevalidate(&spec, &factories, &cfg).unwrap_err();
        assert!(err.message().contains("no factory"), "{err}");
    }

    #[test]
    fn route_window_tracks_capacity_within_bounds() {
        assert_eq!(route_window(0), 4);
        assert_eq!(route_window(1), 4);
        assert_eq!(route_window(4), 8);
        assert_eq!(route_window(100), 200);
        assert_eq!(route_window(usize::MAX), MAX_CREDIT_GRANT);
        assert_eq!(route_window(1 << 30), MAX_CREDIT_GRANT);
    }

    #[test]
    fn absent_peer_times_out_with_a_typed_error_naming_it() {
        let mut cfg = NodeConfig::new(0, free_loopback_addrs(2).unwrap());
        cfg.connect_timeout = Duration::from_millis(200);
        let started = Instant::now();
        let err = connect_mesh(&cfg, 42).unwrap_err();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "accept loop must not hang"
        );
        assert_eq!(err.kind(), FilterErrorKind::Io);
        assert!(err.message().contains("timed out"), "{err}");
        assert!(err.message().contains("node 1"), "{err}");
    }

    #[test]
    fn reserved_listeners_hold_their_ports() {
        let (addrs, listeners) = reserve_loopback_listeners(3).unwrap();
        assert_eq!(addrs.len(), 3);
        assert_eq!(listeners.len(), 3);
        // While the reservation is alive, nobody can steal the port — the
        // exact TOCTOU free_loopback_addrs() leaves open.
        for a in &addrs {
            assert!(
                TcpListener::bind(a).is_err(),
                "port {a} must stay reserved while the listener lives"
            );
        }
        drop(listeners);
    }

    #[test]
    fn prebound_listener_survives_port_contention() {
        // Regression for the launch port race: a thief hammers the
        // reserved address with bind attempts for the whole handshake; a
        // pre-bound listener makes that provably futile, where the old
        // reserve-then-drop dance could lose the port.
        for _ in 0..5 {
            let (addrs, listeners) = reserve_loopback_listeners(2).unwrap();
            let digest = 7u64;
            let stop = Arc::new(AtomicBool::new(false));
            let thief = {
                let addr = addrs[0];
                let stop = stop.clone();
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        assert!(
                            TcpListener::bind(addr).is_err(),
                            "thief stole the reserved port {addr}"
                        );
                    }
                })
            };
            let mut cfg0 = NodeConfig::new(0, addrs.clone());
            cfg0.listener = Some(listeners[0].clone());
            cfg0.connect_timeout = Duration::from_secs(10);
            let mut cfg1 = NodeConfig::new(1, addrs);
            cfg1.connect_timeout = Duration::from_secs(10);
            std::thread::scope(|s| {
                let n0 = s.spawn(|| connect_mesh(&cfg0, digest));
                let n1 = s.spawn(|| connect_mesh(&cfg1, digest));
                let p0 = n0.join().unwrap().expect("node 0 mesh");
                let p1 = n1.join().unwrap().expect("node 1 mesh");
                assert!(p0.contains_key(&1) && p1.contains_key(&0));
            });
            stop.store(true, Ordering::Relaxed);
            thief.join().unwrap();
        }
    }

    #[test]
    fn mixed_wire_versions_are_rejected_loudly() {
        let (addrs, mut listeners) = reserve_loopback_listeners(2).unwrap();
        let digest = 42u64;
        // A fake version-1 node 0: accepts the dial, answers with a v1
        // Hello (no features word on the wire). Reusing the reserved
        // listener keeps this test itself race-free.
        let listener = listeners.remove(0);
        let v1 = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).ok();
            let _ = read_frame(&mut s);
            let _ = write_frame(
                &mut s,
                &Frame::Hello {
                    version: 1,
                    node: 0,
                    digest,
                    features: 0,
                },
            );
            // Hold the socket open until the dialer has read the reply.
            std::thread::sleep(Duration::from_millis(100));
        });
        let mut cfg = NodeConfig::new(1, addrs);
        cfg.connect_timeout = Duration::from_secs(5);
        let err = connect_mesh(&cfg, digest).unwrap_err();
        assert_eq!(err.kind(), FilterErrorKind::Io);
        assert!(err.message().contains("protocol version 1"), "{err}");
        v1.join().unwrap();
    }
}
