//! Multi-process execution: one OS process per node, bridged over TCP.
//!
//! [`run_node`] executes the partition of a placed [`GraphSpec`] that maps
//! to one node id, connecting to every peer process over loopback (or any
//! reachable address) with the length-prefixed frame protocol of
//! [`super::wire`]. Same-node streams keep the engine's zero-copy `Arc`
//! path; cross-node streams are split into a **sender half** — an ordinary
//! bounded channel installed at the remote copy's position in the
//! producer's output port, drained by a per-peer TCP writer thread, so
//! backpressure and `blocked_send` accounting work unchanged — and a
//! **receiver half** — a per-peer TCP reader thread that decodes frames and
//! injects buffers into the local consumer queues under the stream's
//! declared [`crate::schedule::SchedulePolicy`].
//!
//! **Handshake.** Node *i* dials every peer *j < i* and accepts from every
//! peer *j > i*: one TCP connection per unordered pair, full mesh. Both
//! sides exchange a `Hello` frame carrying the protocol version, the
//! sender's node id, and a digest of the graph spec plus node count; any
//! mismatch aborts the run with a typed error before any filter spawns.
//!
//! **End-of-stream.** When a cross-node route's local producers finish, the
//! uplink channel disconnects and the writer emits an explicit `Eos` frame
//! for that route; the peer's reader drops its clone of the consumer-queue
//! sender, and the consumer observes end-of-input exactly as it would
//! locally. Connection close is *not* EOS — a socket that dies with live
//! routes is a peer loss.
//!
//! **Failure propagation.** A failing node raises its run-level failure
//! flag before any channel drops (the engine's existing discipline), so its
//! writers observe `failed` at disconnect time and send an `Error` frame —
//! carrying the *origin* node id — instead of `Eos`. Receivers raise their
//! own flag, drop their injectors, and record a typed
//! [`FilterErrorKind::Io`] error naming the failed peer; frames whose
//! origin is the receiving node itself are demoted to secondary so an echo
//! can never shadow the genuine local root cause. A connection that dies
//! without an `Error` frame is reported as `lost connection to node N`.

use crate::buffer::DataBuffer;
use crate::engine::{
    run_graph_partition, EngineConfig, FilterFactory, Partition, RunFailure, RunOutcome,
    StreamInjector,
};
use crate::filter::{FilterError, FilterErrorKind, Msg};
use crate::graph::GraphSpec;
use crate::transport::codec::PayloadCodec;
use crate::transport::wire::{
    read_frame, spec_digest, write_frame, Frame, WireError, SHARED_QUEUE, WIRE_VERSION,
};
use crossbeam::channel::{bounded, Receiver, Select, Sender};
use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Where an injected transport fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFaultKind {
    /// Hard-close the connection (both directions) — simulates a peer
    /// crash or network partition mid-run.
    Drop,
    /// Sleep this long before every subsequent frame write — simulates a
    /// congested link; benign, exercises backpressure through the uplink.
    Stall(Duration),
}

/// A deterministic transport fault, for chaos tests: applied by the writer
/// thread toward `peer` (or every peer) after `after_frames` data frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportFault {
    /// Restrict the fault to the connection toward this peer; `None` arms
    /// every writer.
    pub peer: Option<usize>,
    /// Number of data frames to deliver before the fault fires.
    pub after_frames: u64,
    /// What happens when it fires.
    pub kind: TransportFaultKind,
}

impl TransportFault {
    /// Environment variable read by [`TransportFault::from_env`].
    pub const ENV: &'static str = "H4D_TRANSPORT_FAULT";

    /// Parses `H4D_TRANSPORT_FAULT` for this node.
    ///
    /// Format: `drop:after=N[:peer=K][:node=J]` or
    /// `stall:after=N:ms=M[:peer=K][:node=J]`. The optional `node` selector
    /// restricts the fault to one process of a multi-node launch; when
    /// present and different from `self_node` the fault is ignored, so a
    /// parent can export one value for all children. Returns `None` when
    /// the variable is unset, not aimed at this node, or malformed (chaos
    /// harnesses set it deliberately; a typo degrades to a fault-free run
    /// the test then reports as such).
    pub fn from_env(self_node: usize) -> Option<Self> {
        Self::parse(&std::env::var(Self::ENV).ok()?, self_node)
    }

    /// Parses the [`TransportFault::ENV`] syntax; see
    /// [`TransportFault::from_env`].
    pub fn parse(value: &str, self_node: usize) -> Option<Self> {
        let mut parts = value.split(':');
        let kind_word = parts.next()?;
        let mut after: Option<u64> = None;
        let mut ms: Option<u64> = None;
        let mut peer: Option<usize> = None;
        let mut node: Option<usize> = None;
        for part in parts {
            let (key, val) = part.split_once('=')?;
            match key {
                "after" => after = Some(val.parse().ok()?),
                "ms" => ms = Some(val.parse().ok()?),
                "peer" => peer = Some(val.parse().ok()?),
                "node" => node = Some(val.parse().ok()?),
                _ => return None,
            }
        }
        if node.is_some_and(|n| n != self_node) {
            return None;
        }
        let kind = match kind_word {
            "drop" => TransportFaultKind::Drop,
            "stall" => TransportFaultKind::Stall(Duration::from_millis(ms?)),
            _ => return None,
        };
        Some(Self {
            peer,
            after_frames: after?,
            kind,
        })
    }
}

/// Configuration of one node process in a distributed run.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This process's node id (an index into `addrs`).
    pub node: usize,
    /// Every node's listen address, indexed by node id; `addrs[node]` is
    /// this process's own listener.
    pub addrs: Vec<SocketAddr>,
    /// Engine options for the local partition.
    pub engine: EngineConfig,
    /// How long to keep re-dialing a peer that has not started listening
    /// yet (and the per-read deadline during the handshake).
    pub connect_timeout: Duration,
    /// Optional injected fault, for chaos tests.
    pub fault: Option<TransportFault>,
}

impl NodeConfig {
    /// A loopback configuration for `node` among `addrs`, with a 10 s
    /// connect timeout and the fault taken from the environment.
    pub fn new(node: usize, addrs: Vec<SocketAddr>) -> Self {
        Self {
            node,
            addrs,
            engine: EngineConfig::default(),
            connect_timeout: Duration::from_secs(10),
            fault: TransportFault::from_env(node),
        }
    }
}

/// Reserves `n` distinct loopback addresses by binding ephemeral listeners
/// and collecting their ports.
///
/// The listeners are dropped before returning, so a raced process could in
/// principle steal a port before the node binds it — acceptable for tests
/// and single-host launches, which is what this helper is for.
///
/// # Errors
/// Propagates the bind failure.
pub fn free_loopback_addrs(n: usize) -> std::io::Result<Vec<SocketAddr>> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<Result<_, _>>()?;
    listeners.iter().map(TcpListener::local_addr).collect()
}

/// Route key on the wire: `(stream index, destination)` where destination
/// is a global consumer copy index or [`SHARED_QUEUE`].
type RouteKey = (u32, u32);

/// Sentinel key for the writer's run-end watch channel (never on the wire).
const WATCH_KEY: RouteKey = (u32::MAX, u32::MAX);

/// What a reader needs to inject one route's buffers locally.
struct RouteIn {
    port: usize,
    tx: Sender<Msg>,
    meter: Arc<crate::metrics::StreamMeter>,
}

/// How a locally recorded transport error was detected — the precedence
/// class of the root-cause merge.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ErrClass {
    /// Detected on this node: socket loss, decode failure, injected drop.
    Local,
    /// Reported by a peer via an `Error` frame; carries the frame's origin.
    Remote,
}

/// State shared between the engine partition and the transport threads.
struct Shared {
    node: usize,
    failed: Arc<AtomicBool>,
    /// First-writer-wins origin hint for outgoing `Error` frames: the node
    /// this process believes the failure started on. `u64::MAX` = unset.
    origin_hint: AtomicU64,
    errors: Mutex<Vec<(ErrClass, usize, FilterError)>>,
}

impl Shared {
    fn new(node: usize) -> Self {
        Self {
            node,
            failed: Arc::new(AtomicBool::new(false)),
            origin_hint: AtomicU64::new(u64::MAX),
            errors: Mutex::new(Vec::new()),
        }
    }

    /// Records a transport error and raises the run-level failure flag
    /// **before** any caller-side channel teardown, preserving the
    /// engine's flag-before-disconnect discipline across processes.
    fn record(&self, class: ErrClass, origin: usize, err: FilterError) {
        let _ = self.origin_hint.compare_exchange(
            u64::MAX,
            origin as u64,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        self.errors
            .lock()
            .expect("transport error list lock")
            .push((class, origin, err));
        self.failed.store(true, Ordering::SeqCst);
    }

    /// The origin id and message an outgoing `Error` frame should carry.
    fn outgoing_error(&self) -> (u32, String) {
        let hint = self.origin_hint.load(Ordering::SeqCst);
        let origin = if hint == u64::MAX {
            self.node
        } else {
            hint as usize
        };
        let message = self
            .errors
            .lock()
            .expect("transport error list lock")
            .first()
            .map(|(_, _, e)| e.to_string())
            .unwrap_or_else(|| format!("run failed on node {}", self.node));
        (origin as u32, message)
    }
}

fn io_filter_error(msg: String) -> FilterError {
    FilterError::new(FilterErrorKind::Io, msg)
}

/// Validates everything [`run_graph_partition`] would reject, plus the
/// distributed-only constraints, *before* any transport thread spawns.
///
/// This is load-bearing for liveness, not just early diagnostics: the
/// engine's early-return paths fire before its failure flag is armed, so a
/// post-handshake engine rejection would let the writers translate the
/// resulting channel teardown into clean `Eos` frames and peers would
/// happily complete on truncated data. Rejecting here, before the
/// handshake, means the peer instead times out dialing — a loud, typed
/// failure.
fn prevalidate(
    spec: &GraphSpec,
    factories: &HashMap<String, FilterFactory>,
    cfg: &NodeConfig,
) -> Result<(), FilterError> {
    spec.validate()
        .map_err(|e| FilterError::engine(format!("invalid graph: {e}")))?;
    let nodes = cfg.addrs.len();
    if nodes == 0 {
        return Err(FilterError::engine("no node addresses configured"));
    }
    if cfg.node >= nodes {
        return Err(FilterError::engine(format!(
            "node id {} out of range for {nodes} configured addresses",
            cfg.node
        )));
    }
    for f in &spec.filters {
        if !factories.contains_key(&f.name) {
            return Err(FilterError::engine(format!(
                "no factory for filter {:?}",
                f.name
            )));
        }
        if f.placement.len() != f.copies {
            return Err(FilterError::engine(format!(
                "distributed run requires full placement: filter {:?} places {} of {} copies",
                f.name,
                f.placement.len(),
                f.copies
            )));
        }
        if let Some(&bad) = f.placement.iter().find(|&&n| n >= nodes) {
            return Err(FilterError::engine(format!(
                "filter {:?} placed on node {bad}, but only {nodes} nodes are configured",
                f.name
            )));
        }
    }
    for s in &spec.streams {
        if !s.policy.uses_private_queues() {
            let cdecl = spec.filter_decl(&s.to).expect("validated");
            if cdecl.placement.windows(2).any(|w| w[0] != w[1]) {
                return Err(FilterError::engine(format!(
                    "demand-driven stream {:?} requires all copies of {:?} on one node",
                    s.name, s.to
                )));
            }
        }
    }
    Ok(())
}

/// Dials peers below this node's id and accepts from peers above it,
/// exchanging and checking `Hello` frames. Returns one connected, verified
/// stream per peer, keyed by peer id.
fn connect_mesh(cfg: &NodeConfig, digest: u64) -> Result<HashMap<usize, TcpStream>, FilterError> {
    let nodes = cfg.addrs.len();
    let me = cfg.node;
    let hello = Frame::Hello {
        version: WIRE_VERSION,
        node: me as u32,
        digest,
    };
    let check_hello = |frame: Option<Frame>, who: &str| -> Result<u32, FilterError> {
        match frame {
            Some(Frame::Hello {
                version,
                node,
                digest: d,
            }) => {
                if version != WIRE_VERSION {
                    return Err(io_filter_error(format!(
                        "handshake with {who}: protocol version {version} != {WIRE_VERSION}"
                    )));
                }
                if d != digest {
                    return Err(io_filter_error(format!(
                        "handshake with {who}: graph digest mismatch \
                         (peers must run the same spec and node count)"
                    )));
                }
                Ok(node)
            }
            Some(_) => Err(io_filter_error(format!(
                "handshake with {who}: first frame was not Hello"
            ))),
            None => Err(io_filter_error(format!(
                "handshake with {who}: connection closed before Hello"
            ))),
        }
    };

    let mut peers: HashMap<usize, TcpStream> = HashMap::new();
    // Dial every lower-numbered peer, retrying until its listener is up.
    for peer in 0..me {
        let deadline = Instant::now() + cfg.connect_timeout;
        let mut stream = loop {
            match TcpStream::connect(cfg.addrs[peer]) {
                Ok(s) => break s,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    return Err(io_filter_error(format!(
                        "could not connect to node {peer} at {}: {e}",
                        cfg.addrs[peer]
                    )));
                }
            }
        };
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(cfg.connect_timeout)).ok();
        write_frame(&mut stream, &hello)
            .map_err(|e| io_filter_error(format!("handshake send to node {peer} failed: {e}")))?;
        let got = read_frame(&mut stream)
            .map_err(|e| io_filter_error(format!("handshake with node {peer} failed: {e}")))?;
        let said = check_hello(got, &format!("node {peer}"))?;
        if said as usize != peer {
            return Err(io_filter_error(format!(
                "dialed node {peer} but it identified as node {said}"
            )));
        }
        stream.set_read_timeout(None).ok();
        peers.insert(peer, stream);
    }
    // Accept every higher-numbered peer; the Hello tells us which one.
    if me + 1 < nodes {
        let listener = TcpListener::bind(cfg.addrs[me])
            .map_err(|e| io_filter_error(format!("could not listen on {}: {e}", cfg.addrs[me])))?;
        for _ in me + 1..nodes {
            let (mut stream, from) = listener
                .accept()
                .map_err(|e| io_filter_error(format!("accept failed: {e}")))?;
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(cfg.connect_timeout)).ok();
            let got = read_frame(&mut stream)
                .map_err(|e| io_filter_error(format!("handshake from {from} failed: {e}")))?;
            let said = check_hello(got, &format!("{from}"))? as usize;
            if said <= me || said >= nodes || peers.contains_key(&said) {
                return Err(io_filter_error(format!(
                    "unexpected or duplicate peer id {said} from {from}"
                )));
            }
            write_frame(&mut stream, &hello).map_err(|e| {
                io_filter_error(format!("handshake send to node {said} failed: {e}"))
            })?;
            stream.set_read_timeout(None).ok();
            peers.insert(said, stream);
        }
    }
    Ok(peers)
}

/// Per-peer TCP writer: drains the uplink channels routed to `peer`,
/// translating channel disconnection into `Eos` (clean) or one `Error`
/// frame (failed run), and applies the injected fault if armed.
#[allow(clippy::too_many_lines)]
fn writer_thread(
    stream: TcpStream,
    peer: usize,
    mut routes: Vec<(RouteKey, Receiver<Msg>)>,
    codec: Arc<PayloadCodec>,
    shared: Arc<Shared>,
    fault: Option<TransportFault>,
) {
    let mut out = BufWriter::new(stream);
    let fault = fault.filter(|f| f.peer.is_none() || f.peer == Some(peer));
    let mut frames_sent = 0u64;
    let fail_exit = |out: &mut BufWriter<TcpStream>, shared: &Shared| {
        // One Error frame, then close the write half. Dropping the route
        // receivers (by returning) wakes any producer blocked on a full
        // uplink with a DownstreamClosed disconnect.
        let (origin, message) = shared.outgoing_error();
        let _ = write_frame(out, &Frame::Error { origin, message });
        let _ = out.flush();
        let _ = out.get_ref().shutdown(Shutdown::Write);
    };
    while !routes.is_empty() {
        let idx = {
            let mut sel = Select::new();
            for (_, rx) in &routes {
                sel.recv(rx);
            }
            let op = sel.select();
            let idx = op.index();
            match op.recv(&routes[idx].1) {
                Ok(msg) => {
                    let (key, _) = routes[idx];
                    debug_assert_ne!(key, WATCH_KEY, "nothing sends on the watch channel");
                    if let Some(f) = fault {
                        match f.kind {
                            TransportFaultKind::Drop if frames_sent >= f.after_frames => {
                                shared.record(
                                    ErrClass::Local,
                                    peer,
                                    io_filter_error(format!(
                                        "injected transport fault: dropped connection to \
                                         node {peer} after {frames_sent} frames"
                                    )),
                                );
                                let _ = out.get_ref().shutdown(Shutdown::Both);
                                return;
                            }
                            TransportFaultKind::Stall(d) if frames_sent >= f.after_frames => {
                                std::thread::sleep(d);
                            }
                            _ => {}
                        }
                    }
                    let (ptype, payload) = match codec.encode(&msg.buf) {
                        Ok(enc) => enc,
                        Err(e) => {
                            shared.record(
                                ErrClass::Local,
                                shared.node,
                                io_filter_error(format!(
                                    "cannot send stream {} to node {peer}: {e}",
                                    key.0
                                )),
                            );
                            fail_exit(&mut out, &shared);
                            return;
                        }
                    };
                    let frame = Frame::Data {
                        stream: key.0,
                        dest: key.1,
                        tag: msg.buf.tag(),
                        size: msg.buf.size_bytes() as u64,
                        ptype,
                        payload,
                    };
                    if let Err(e) = write_frame(&mut out, &frame)
                        .and_then(|()| out.flush().map_err(WireError::Io))
                    {
                        shared.record(
                            ErrClass::Local,
                            peer,
                            io_filter_error(format!("lost connection to node {peer}: {e}")),
                        );
                        let _ = out.get_ref().shutdown(Shutdown::Both);
                        return;
                    }
                    frames_sent += 1;
                    None
                }
                Err(_) => Some(idx),
            }
        };
        if let Some(idx) = idx {
            // A disconnected channel: clean end-of-route, unless the run
            // already failed — the flag is always raised before channels
            // drop, so this check cannot race to a false `Eos`.
            if shared.failed.load(Ordering::SeqCst) {
                fail_exit(&mut out, &shared);
                return;
            }
            let (key, _) = routes.swap_remove(idx);
            if key != WATCH_KEY {
                let eos = Frame::Eos {
                    stream: key.0,
                    dest: key.1,
                };
                if let Err(e) =
                    write_frame(&mut out, &eos).and_then(|()| out.flush().map_err(WireError::Io))
                {
                    shared.record(
                        ErrClass::Local,
                        peer,
                        io_filter_error(format!("lost connection to node {peer}: {e}")),
                    );
                    let _ = out.get_ref().shutdown(Shutdown::Both);
                    return;
                }
            }
        }
    }
    let _ = out.get_ref().shutdown(Shutdown::Write);
}

/// Per-peer TCP reader: decodes frames and injects buffers into the local
/// consumer queues, holding one queue-sender clone per route until that
/// route's `Eos` arrives. EOF with live routes — or an `Error` frame — is a
/// failed run.
fn reader_thread(
    mut stream: TcpStream,
    peer: usize,
    routes_rx: Receiver<HashMap<RouteKey, RouteIn>>,
    codec: Arc<PayloadCodec>,
    shared: Arc<Shared>,
) {
    // Routes arrive via the engine's injector handoff; a dropped sender
    // means the run aborted before spawning, in which case we still drain
    // the socket so the peer's writer is never wedged against a full
    // kernel buffer.
    let mut routes: HashMap<RouteKey, RouteIn> = routes_rx.recv().unwrap_or_default();
    loop {
        match read_frame(&mut stream) {
            Ok(Some(Frame::Data {
                stream: si,
                dest,
                tag,
                size,
                ptype,
                payload,
            })) => {
                let Some(route) = routes.get(&(si, dest)) else {
                    // Route already closed locally (consumer finished or
                    // failed); drop the frame, keep draining.
                    continue;
                };
                let buf: DataBuffer = match codec.decode(ptype, &payload, size as usize, tag) {
                    Ok(b) => b,
                    Err(e) => {
                        shared.record(
                            ErrClass::Local,
                            peer,
                            io_filter_error(format!(
                                "undecodable frame from node {peer} on stream {si}: {e}"
                            )),
                        );
                        routes.clear();
                        continue;
                    }
                };
                let port = route.port;
                let bytes = buf.size_bytes() as u64;
                if route.tx.send(Msg { port, buf }).is_ok() {
                    route.meter.record(bytes, route.tx.len());
                } else {
                    // The local consumer is gone — its own failure path is
                    // already reporting; just stop feeding this route.
                    routes.remove(&(si, dest));
                }
            }
            Ok(Some(Frame::Eos { stream: si, dest })) => {
                routes.remove(&(si, dest));
            }
            Ok(Some(Frame::Error { origin, message })) => {
                // Record BEFORE dropping the injectors so local consumers
                // that observe the disconnect are guaranteed to see the
                // run-level flag (mirrors the engine's ordering).
                shared.record(
                    ErrClass::Remote,
                    origin as usize,
                    io_filter_error(format!("peer node {origin} failed: {message}")),
                );
                routes.clear();
            }
            Ok(Some(Frame::Hello { .. })) => {
                shared.record(
                    ErrClass::Local,
                    peer,
                    io_filter_error(format!("unexpected mid-run Hello from node {peer}")),
                );
                routes.clear();
                return;
            }
            Ok(None) => {
                if !routes.is_empty() {
                    shared.record(
                        ErrClass::Local,
                        peer,
                        io_filter_error(format!("lost connection to node {peer}")),
                    );
                    routes.clear();
                }
                return;
            }
            Err(e) => {
                shared.record(
                    ErrClass::Local,
                    peer,
                    io_filter_error(format!("transport read from node {peer}: {e}")),
                );
                routes.clear();
                return;
            }
        }
    }
}

/// Destination keys of stream `si`: one `(wire key, node)` pair per
/// consumer queue — per consumer copy for private-queue policies, a single
/// [`SHARED_QUEUE`] entry for the demand-driven shared queue.
fn dest_keys(spec: &GraphSpec, si: usize) -> Vec<(u32, usize)> {
    let s = &spec.streams[si];
    let cdecl = spec.filter_decl(&s.to).expect("validated");
    if s.policy.uses_private_queues() {
        (0..cdecl.copies)
            .map(|c| (c as u32, cdecl.placement[c]))
            .collect()
    } else {
        vec![(SHARED_QUEUE, cdecl.placement[0])]
    }
}

/// Executes this node's partition of a placed graph, bridging cross-node
/// streams to the peer processes in `cfg.addrs` over TCP.
///
/// Blocks until the local partition has finished **and** every transport
/// thread has been joined; like [`crate::run_graph`], no thread outlives
/// the call. The returned [`RunOutcome`] / [`RunFailure`] covers this
/// node's copies only; root-cause selection extends the engine's kind
/// ordering with transport classes — a locally detected peer loss beats a
/// peer-reported failure (with the reporting echo of this node's own
/// failure demoted), and both beat the local engine error they caused.
///
/// # Errors
/// Pre-validation failures (graph, placement, factories), handshake
/// failures, or the merged root cause of a failed distributed run.
pub fn run_node(
    spec: &GraphSpec,
    factories: &mut HashMap<String, FilterFactory>,
    codec: Arc<PayloadCodec>,
    cfg: &NodeConfig,
) -> Result<RunOutcome, RunFailure> {
    prevalidate(spec, factories, cfg)?;
    let me = cfg.node;
    let spec_json = serde_json::to_vec(spec)
        .map_err(|e| FilterError::engine(format!("graph spec serialization failed: {e}")))?;
    let digest = spec_digest(&spec_json, cfg.addrs.len());
    let peers = connect_mesh(cfg, digest)?;
    let shared = Arc::new(Shared::new(me));

    // Build the cross-node routes. Uplinks (keyed for the engine) carry
    // locally produced buffers toward remote queues; reader route specs
    // name the remote-produced routes each peer will feed into us.
    let mut uplinks: HashMap<(usize, Option<usize>), Sender<Msg>> = HashMap::new();
    let mut writer_routes: HashMap<usize, Vec<(RouteKey, Receiver<Msg>)>> = HashMap::new();
    let mut reader_specs: HashMap<usize, Vec<RouteKey>> = HashMap::new();
    for si in 0..spec.streams.len() {
        let s = &spec.streams[si];
        let pdecl = spec.filter_decl(&s.from).expect("validated");
        let local_producer = pdecl.placement.iter().any(|&n| n == me);
        for (wire_dest, dnode) in dest_keys(spec, si) {
            if dnode != me && local_producer {
                let (tx, rx) = bounded::<Msg>(s.capacity);
                let dest = (wire_dest != SHARED_QUEUE).then_some(wire_dest as usize);
                uplinks.insert((si, dest), tx);
                writer_routes
                    .entry(dnode)
                    .or_default()
                    .push(((si as u32, wire_dest), rx));
            }
            if dnode == me {
                for &pnode in &pdecl.placement {
                    if pnode != me {
                        let spec_list = reader_specs.entry(pnode).or_default();
                        let key = (si as u32, wire_dest);
                        if !spec_list.contains(&key) {
                            spec_list.push(key);
                        }
                    }
                }
            }
        }
    }

    // Spawn one writer and one reader per peer — even route-less ones: a
    // route-less writer lingers on the watch channel so a late local
    // failure still reaches every peer as an Error frame, and a route-less
    // reader still drains Error frames and EOF from its peer.
    let mut handles = Vec::new();
    let mut watch_txs = Vec::new();
    let mut route_map_txs: Vec<(usize, Sender<HashMap<RouteKey, RouteIn>>)> = Vec::new();
    for (&peer, stream) in &peers {
        let read_half = match stream.try_clone() {
            Ok(s) => s,
            Err(e) => {
                return Err(io_filter_error(format!(
                    "could not clone connection to node {peer}: {e}"
                ))
                .into());
            }
        };
        let mut routes = writer_routes.remove(&peer).unwrap_or_default();
        let (watch_tx, watch_rx) = bounded::<Msg>(1);
        watch_txs.push(watch_tx);
        routes.push((WATCH_KEY, watch_rx));
        let (map_tx, map_rx) = bounded::<HashMap<RouteKey, RouteIn>>(1);
        route_map_txs.push((peer, map_tx));
        let (w_codec, w_shared, w_fault) = (codec.clone(), shared.clone(), cfg.fault);
        let write_half = stream.try_clone().map_err(|e| {
            RunFailure::from(io_filter_error(format!(
                "could not clone connection to node {peer}: {e}"
            )))
        })?;
        handles.push(
            std::thread::Builder::new()
                .name(format!("{}-tx-{peer}", cfg.engine.thread_name_prefix))
                .spawn(move || writer_thread(write_half, peer, routes, w_codec, w_shared, w_fault))
                .map_err(|e| FilterError::engine(format!("thread spawn failed: {e}")))?,
        );
        let (r_codec, r_shared) = (codec.clone(), shared.clone());
        handles.push(
            std::thread::Builder::new()
                .name(format!("{}-rx-{peer}", cfg.engine.thread_name_prefix))
                .spawn(move || reader_thread(read_half, peer, map_rx, r_codec, r_shared))
                .map_err(|e| FilterError::engine(format!("thread spawn failed: {e}")))?,
        );
    }
    drop(peers);

    // The handoff runs inside the engine after queue creation and before
    // any copy spawns: it slices the injector set into one route map per
    // peer and releases the reader threads.
    let handoff_specs = reader_specs;
    let handoff = Box::new(move |injectors: Vec<Option<StreamInjector>>| {
        for (peer, map_tx) in route_map_txs {
            let mut map = HashMap::new();
            for &(si, wire_dest) in handoff_specs.get(&peer).into_iter().flatten() {
                let Some(inj) = &injectors[si as usize] else {
                    continue;
                };
                let want = (wire_dest != SHARED_QUEUE).then_some(wire_dest as usize);
                if let Some((_, tx)) = inj.senders.iter().find(|(k, _)| *k == want) {
                    map.insert(
                        (si, wire_dest),
                        RouteIn {
                            port: inj.port,
                            tx: tx.clone(),
                            meter: inj.meter.clone(),
                        },
                    );
                }
            }
            let _ = map_tx.send(map);
        }
    });

    let partition = Partition {
        node: Some(me),
        uplinks,
        handoff: Some(handoff),
        failed: shared.failed.clone(),
    };
    let result = run_graph_partition(spec, factories, &cfg.engine, partition);

    // The engine has returned, so the local run's failure state is final:
    // release the watch channels (turning lingering writers loose) and
    // join every transport thread before reporting.
    drop(watch_txs);
    for h in handles {
        let _ = h.join();
    }

    // Merge the transport view into the engine result. Precedence per
    // node: locally detected loss, then peer-reported failures that did
    // not originate here (echoes of our own failure must not shadow its
    // real local root), then the engine's own kind-selected root cause.
    let mut errors = shared
        .errors
        .lock()
        .expect("transport error list lock")
        .drain(..)
        .collect::<Vec<_>>();
    let local_at = errors
        .iter()
        .position(|(class, _, _)| *class == ErrClass::Local);
    let remote_at = errors
        .iter()
        .position(|(class, origin, _)| *class == ErrClass::Remote && *origin != me);
    let root_at = local_at.or(remote_at);
    match result {
        Ok(outcome) => match root_at {
            Some(at) => {
                let (_, _, error) = errors.remove(at);
                Err(RunFailure {
                    error,
                    secondary: errors.into_iter().map(|(_, _, e)| e).collect(),
                    stats: outcome.stats,
                })
            }
            None => Ok(outcome),
        },
        Err(mut failure) => {
            match root_at {
                Some(at) => {
                    let (_, _, error) = errors.remove(at);
                    let engine_root = std::mem::replace(&mut failure.error, error);
                    failure.secondary.insert(0, engine_root);
                    failure
                        .secondary
                        .extend(errors.into_iter().map(|(_, _, e)| e));
                }
                None => {
                    failure
                        .secondary
                        .extend(errors.into_iter().map(|(_, _, e)| e));
                }
            }
            Err(failure)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_parsing_covers_both_kinds_and_selectors() {
        let f = TransportFault::parse("drop:after=5:peer=1", 0).unwrap();
        assert_eq!(f.peer, Some(1));
        assert_eq!(f.after_frames, 5);
        assert_eq!(f.kind, TransportFaultKind::Drop);

        let f = TransportFault::parse("stall:after=3:ms=250", 2).unwrap();
        assert_eq!(f.peer, None);
        assert_eq!(
            f.kind,
            TransportFaultKind::Stall(Duration::from_millis(250))
        );

        // Node selector: matches, filters, and is optional.
        assert!(TransportFault::parse("drop:after=0:node=1", 1).is_some());
        assert!(TransportFault::parse("drop:after=0:node=1", 0).is_none());

        // Malformed inputs degrade to no fault, never a panic.
        for bad in [
            "",
            "drop",
            "drop:after=x",
            "stall:after=1",
            "flood:after=1",
            "drop:after=1:bogus=2",
        ] {
            assert!(TransportFault::parse(bad, 0).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn free_loopback_addrs_are_distinct() {
        let addrs = free_loopback_addrs(4).unwrap();
        assert_eq!(addrs.len(), 4);
        for (i, a) in addrs.iter().enumerate() {
            assert!(a.ip().is_loopback());
            for b in &addrs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn prevalidation_requires_full_placement() {
        let spec = crate::GraphSpec::new()
            .filter("a", 1)
            .filter("b", 1)
            .stream("s", "a", "b", crate::SchedulePolicy::RoundRobin);
        let factories = HashMap::new();
        let cfg = NodeConfig::new(0, free_loopback_addrs(2).unwrap());
        let err = prevalidate(&spec, &factories, &cfg).unwrap_err();
        assert!(err.message().contains("no factory"), "{err}");
    }
}
