//! Filter-graph description.
//!
//! A graph declares the application's filters (with their copy counts and
//! node placements) and the streams connecting them. DataCutter expressed
//! this as an XML document; we use a typed builder that serializes to JSON.
//!
//! Port numbering: a filter's *input ports* are its incoming streams in
//! declaration order, and its *output ports* its outgoing streams in
//! declaration order. [`crate::filter::Filter::process`] receives the input
//! port index; [`crate::filter::FilterContext::emit`] takes the output port
//! index.

use crate::schedule::SchedulePolicy;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// A filter declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterDecl {
    /// Unique filter name (e.g. `"HCC"`).
    pub name: String,
    /// Number of copies to instantiate.
    pub copies: usize,
    /// Node placement of each copy (`placement[i]` is copy `i`'s node id).
    /// May be empty for the threaded engine, which ignores placement; the
    /// cluster simulator requires one entry per copy.
    pub placement: Vec<usize>,
}

/// A stream declaration connecting two filters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamDecl {
    /// Unique stream name (e.g. `"coocc"`).
    pub name: String,
    /// Producer filter name.
    pub from: String,
    /// Consumer filter name.
    pub to: String,
    /// Buffer scheduling policy across the consumer's copies.
    pub policy: SchedulePolicy,
    /// Queue bound, in buffers, per queue (backpressure depth).
    pub capacity: usize,
}

/// Errors detected by [`GraphSpec::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Two filters share a name.
    DuplicateFilter(String),
    /// Two streams share a name.
    DuplicateStream(String),
    /// A stream references an unknown filter.
    UnknownFilter {
        /// The stream.
        stream: String,
        /// The missing filter name.
        filter: String,
    },
    /// A filter has zero copies.
    ZeroCopies(String),
    /// A stream has zero capacity.
    ZeroCapacity(String),
    /// A stream connects a filter to itself.
    SelfLoop(String),
    /// The stream graph contains a cycle.
    Cycle,
    /// A placement list has the wrong length.
    BadPlacement(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateFilter(n) => write!(f, "duplicate filter name {n:?}"),
            GraphError::DuplicateStream(n) => write!(f, "duplicate stream name {n:?}"),
            GraphError::UnknownFilter { stream, filter } => {
                write!(f, "stream {stream:?} references unknown filter {filter:?}")
            }
            GraphError::ZeroCopies(n) => write!(f, "filter {n:?} declared with zero copies"),
            GraphError::ZeroCapacity(n) => write!(f, "stream {n:?} declared with zero capacity"),
            GraphError::SelfLoop(n) => write!(f, "stream {n:?} connects a filter to itself"),
            GraphError::Cycle => write!(f, "stream graph contains a cycle"),
            GraphError::BadPlacement(n) => {
                write!(f, "filter {n:?} placement length does not match copies")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// The complete filter-graph description.
///
/// ```
/// use datacutter::{GraphSpec, SchedulePolicy};
///
/// let spec = GraphSpec::new()
///     .filter("reader", 4)
///     .filter("worker", 8)
///     .filter("sink", 1)
///     .stream("data", "reader", "worker", SchedulePolicy::DemandDriven)
///     .stream("out", "worker", "sink", SchedulePolicy::RoundRobin);
/// let topo_order = spec.validate().expect("acyclic and well-formed");
/// assert_eq!(topo_order.len(), 3);
/// assert_eq!(spec.inputs_of("worker").len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphSpec {
    /// Declared filters.
    pub filters: Vec<FilterDecl>,
    /// Declared streams.
    pub streams: Vec<StreamDecl>,
}

impl GraphSpec {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an unplaced filter with `copies` transparent copies.
    pub fn filter(mut self, name: &str, copies: usize) -> Self {
        self.filters.push(FilterDecl {
            name: name.to_string(),
            copies,
            placement: Vec::new(),
        });
        self
    }

    /// Adds a filter with explicit per-copy node placement (the copy count
    /// is the placement length).
    pub fn filter_placed(mut self, name: &str, placement: Vec<usize>) -> Self {
        self.filters.push(FilterDecl {
            name: name.to_string(),
            copies: placement.len(),
            placement,
        });
        self
    }

    /// Adds a stream with the default queue capacity of 4 buffers.
    pub fn stream(self, name: &str, from: &str, to: &str, policy: SchedulePolicy) -> Self {
        self.stream_with_capacity(name, from, to, policy, 4)
    }

    /// Adds a stream with an explicit queue capacity.
    pub fn stream_with_capacity(
        mut self,
        name: &str,
        from: &str,
        to: &str,
        policy: SchedulePolicy,
        capacity: usize,
    ) -> Self {
        self.streams.push(StreamDecl {
            name: name.to_string(),
            from: from.to_string(),
            to: to.to_string(),
            policy,
            capacity,
        });
        self
    }

    /// Index of the filter named `name`.
    pub fn filter_index(&self, name: &str) -> Option<usize> {
        self.filters.iter().position(|f| f.name == name)
    }

    /// The declaration of the filter named `name`.
    pub fn filter_decl(&self, name: &str) -> Option<&FilterDecl> {
        self.filters.iter().find(|f| f.name == name)
    }

    /// Stream indices entering `filter`, in declaration order — these are
    /// the filter's input ports.
    pub fn inputs_of(&self, filter: &str) -> Vec<usize> {
        self.streams
            .iter()
            .enumerate()
            .filter(|(_, s)| s.to == filter)
            .map(|(i, _)| i)
            .collect()
    }

    /// Stream indices leaving `filter`, in declaration order — these are
    /// the filter's output ports.
    pub fn outputs_of(&self, filter: &str) -> Vec<usize> {
        self.streams
            .iter()
            .enumerate()
            .filter(|(_, s)| s.from == filter)
            .map(|(i, _)| i)
            .collect()
    }

    /// Validates the graph; returns filter indices in a topological order.
    pub fn validate(&self) -> Result<Vec<usize>, GraphError> {
        let mut names = HashSet::new();
        for f in &self.filters {
            if !names.insert(f.name.as_str()) {
                return Err(GraphError::DuplicateFilter(f.name.clone()));
            }
            if f.copies == 0 {
                return Err(GraphError::ZeroCopies(f.name.clone()));
            }
            if !f.placement.is_empty() && f.placement.len() != f.copies {
                return Err(GraphError::BadPlacement(f.name.clone()));
            }
        }
        let mut snames = HashSet::new();
        for s in &self.streams {
            if !snames.insert(s.name.as_str()) {
                return Err(GraphError::DuplicateStream(s.name.clone()));
            }
            for endpoint in [&s.from, &s.to] {
                if !names.contains(endpoint.as_str()) {
                    return Err(GraphError::UnknownFilter {
                        stream: s.name.clone(),
                        filter: endpoint.clone(),
                    });
                }
            }
            if s.capacity == 0 {
                return Err(GraphError::ZeroCapacity(s.name.clone()));
            }
            if s.from == s.to {
                return Err(GraphError::SelfLoop(s.name.clone()));
            }
        }
        // Kahn's algorithm for cycle detection + topological order.
        let idx: HashMap<&str, usize> = self
            .filters
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), i))
            .collect();
        let mut indeg = vec![0usize; self.filters.len()];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.filters.len()];
        for s in &self.streams {
            let (a, b) = (idx[s.from.as_str()], idx[s.to.as_str()]);
            adj[a].push(b);
            indeg[b] += 1;
        }
        let mut queue: VecDeque<usize> =
            (0..self.filters.len()).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(self.filters.len());
        while let Some(i) = queue.pop_front() {
            order.push(i);
            for &j in &adj[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push_back(j);
                }
            }
        }
        if order.len() != self.filters.len() {
            return Err(GraphError::Cycle);
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline() -> GraphSpec {
        GraphSpec::new()
            .filter("src", 2)
            .filter("mid", 3)
            .filter("sink", 1)
            .stream("a", "src", "mid", SchedulePolicy::DemandDriven)
            .stream("b", "mid", "sink", SchedulePolicy::RoundRobin)
    }

    #[test]
    fn valid_pipeline_topo_order() {
        let g = pipeline();
        let order = g.validate().unwrap();
        let pos = |n: &str| order.iter().position(|&i| g.filters[i].name == n).unwrap();
        assert!(pos("src") < pos("mid"));
        assert!(pos("mid") < pos("sink"));
    }

    #[test]
    fn ports_follow_declaration_order() {
        let g = GraphSpec::new()
            .filter("a", 1)
            .filter("b", 1)
            .filter("c", 1)
            .stream("s1", "a", "c", SchedulePolicy::RoundRobin)
            .stream("s2", "b", "c", SchedulePolicy::RoundRobin);
        assert_eq!(g.inputs_of("c"), vec![0, 1]);
        assert_eq!(g.outputs_of("a"), vec![0]);
        assert!(g.inputs_of("a").is_empty());
    }

    #[test]
    fn cycle_detected() {
        let g = GraphSpec::new()
            .filter("a", 1)
            .filter("b", 1)
            .stream("f", "a", "b", SchedulePolicy::RoundRobin)
            .stream("r", "b", "a", SchedulePolicy::RoundRobin);
        assert_eq!(g.validate(), Err(GraphError::Cycle));
    }

    #[test]
    fn self_loop_detected() {
        let g = GraphSpec::new()
            .filter("a", 1)
            .stream("l", "a", "a", SchedulePolicy::RoundRobin);
        assert!(matches!(g.validate(), Err(GraphError::SelfLoop(_))));
    }

    #[test]
    fn unknown_endpoint_detected() {
        let g =
            GraphSpec::new()
                .filter("a", 1)
                .stream("s", "a", "ghost", SchedulePolicy::RoundRobin);
        assert!(matches!(
            g.validate(),
            Err(GraphError::UnknownFilter { .. })
        ));
    }

    #[test]
    fn duplicate_names_detected() {
        let g = GraphSpec::new().filter("a", 1).filter("a", 1);
        assert!(matches!(g.validate(), Err(GraphError::DuplicateFilter(_))));
        let g2 = pipeline().stream("a", "src", "sink", SchedulePolicy::RoundRobin);
        assert!(matches!(g2.validate(), Err(GraphError::DuplicateStream(_))));
    }

    #[test]
    fn zero_copies_and_capacity_detected() {
        let g = GraphSpec::new().filter("a", 0);
        assert!(matches!(g.validate(), Err(GraphError::ZeroCopies(_))));
        let g2 = GraphSpec::new()
            .filter("a", 1)
            .filter("b", 1)
            .stream_with_capacity("s", "a", "b", SchedulePolicy::RoundRobin, 0);
        assert!(matches!(g2.validate(), Err(GraphError::ZeroCapacity(_))));
    }

    #[test]
    fn placement_length_checked() {
        let mut g = GraphSpec::new().filter_placed("a", vec![0, 1]);
        assert_eq!(g.filters[0].copies, 2);
        g.filters[0].copies = 3;
        assert!(matches!(g.validate(), Err(GraphError::BadPlacement(_))));
    }

    #[test]
    fn json_roundtrip() {
        let g = pipeline();
        let s = serde_json::to_string(&g).unwrap();
        let back: GraphSpec = serde_json::from_str(&s).unwrap();
        assert_eq!(g, back);
    }
}
