//! Run-level observability: per-stream meters, run phases, and the
//! serializable [`RunReport`].
//!
//! Paper Figure 9 plots, per filter, processing time against time spent
//! waiting on streams. The engine measures that split directly — per copy,
//! [`crate::stats::FilterCopyStats::blocked_send`] (emit blocked on a full
//! downstream queue) and [`crate::stats::FilterCopyStats::blocked_recv`]
//! (waiting for input) — and per stream, delivered buffer/byte counts plus a
//! sampled queue-depth high-water mark. [`RunReport`] aggregates the lot
//! with the graph shape and schedule policies into one JSON-serializable
//! document (`h4d … --report out.json`), the filter-level instrumentation
//! frameworks like Region Templates rely on to diagnose pipeline placement.

use crate::engine::RunOutcome;
use crate::graph::GraphSpec;
use crate::schedule::SchedulePolicy;
use crate::stats::FilterCopyStats;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Shared per-stream meter, updated lock-free by every producer copy.
///
/// `emit` records one delivery per queue write (a broadcast to *n* consumer
/// copies counts *n* deliveries) and samples the written queue's depth right
/// after the send — a cheap high-water signal that exposes which stream the
/// backpressure lives on without per-buffer timestamps.
#[derive(Debug, Default)]
pub struct StreamMeter {
    buffers: AtomicU64,
    bytes: AtomicU64,
    depth_high_water: AtomicUsize,
}

impl StreamMeter {
    /// Records one delivered buffer of `bytes` bytes and samples the target
    /// queue's depth observed immediately after the send.
    pub fn record(&self, bytes: u64, depth: usize) {
        self.buffers.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.depth_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// Buffers delivered over the stream (per queue write).
    pub fn buffers(&self) -> u64 {
        self.buffers.load(Ordering::Relaxed)
    }

    /// Bytes delivered over the stream (per queue write).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Highest queue depth sampled after any send on the stream.
    pub fn depth_high_water(&self) -> usize {
        self.depth_high_water.load(Ordering::Relaxed)
    }
}

/// Timestamps of the engine's three run phases.
///
/// *Spin-up* covers validation, channel creation and factory/thread
/// creation; *steady* runs from the last spawn to the first copy
/// completion; *drain* from the first completion until every worker thread
/// is joined. The three phases partition the run, so their sum never
/// exceeds the run's wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunPhases {
    /// Validation, channel creation, factories, thread spawns.
    pub spinup: Duration,
    /// Last spawn to first copy completion.
    pub steady: Duration,
    /// First copy completion to last thread join.
    pub drain: Duration,
}

/// One filter's shape in the report: its name and copy count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterShape {
    /// Filter name.
    pub name: String,
    /// Number of transparent copies.
    pub copies: usize,
}

/// Per-stream aggregate in the report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Stream name.
    pub name: String,
    /// Producer filter.
    pub from: String,
    /// Consumer filter.
    pub to: String,
    /// Scheduling policy across the consumer's copies.
    pub policy: SchedulePolicy,
    /// Queue bound, in buffers, per queue.
    pub capacity: usize,
    /// Number of queues realizing the stream (consumer copies for
    /// private-queue policies, one for the shared demand-driven queue).
    pub queues: usize,
    /// Buffers delivered, counted per queue write (a broadcast counts once
    /// per consumer copy).
    pub buffers: u64,
    /// Bytes delivered, counted per queue write.
    pub bytes: u64,
    /// Highest queue depth sampled right after any send.
    pub depth_high_water: usize,
}

/// Per-copy row of the report: [`FilterCopyStats`] with durations flattened
/// to seconds, the unit Figure 9 plots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CopyReport {
    /// Filter name.
    pub filter: String,
    /// Copy index.
    pub copy: usize,
    /// Buffers consumed.
    pub buffers_in: u64,
    /// Buffers emitted (a broadcast counts once).
    pub buffers_out: u64,
    /// Bytes consumed.
    pub bytes_in: u64,
    /// Bytes emitted.
    pub bytes_out: u64,
    /// Seconds computing inside callbacks, net of blocked sends.
    pub busy_s: f64,
    /// Seconds blocked in `emit` on full downstream queues.
    pub blocked_send_s: f64,
    /// Seconds waiting for input on the copy's streams.
    pub blocked_recv_s: f64,
    /// Thread lifetime in seconds.
    pub wall_s: f64,
}

impl From<&FilterCopyStats> for CopyReport {
    fn from(c: &FilterCopyStats) -> Self {
        Self {
            filter: c.filter.clone(),
            copy: c.copy,
            buffers_in: c.buffers_in,
            buffers_out: c.buffers_out,
            bytes_in: c.bytes_in,
            bytes_out: c.bytes_out,
            busy_s: c.busy.as_secs_f64(),
            blocked_send_s: c.blocked_send.as_secs_f64(),
            blocked_recv_s: c.blocked_recv.as_secs_f64(),
            wall_s: c.wall.as_secs_f64(),
        }
    }
}

/// Run phases flattened to seconds for the report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Spin-up seconds (validation, channels, factories, spawns).
    pub spinup_s: f64,
    /// Steady-state seconds (last spawn to first completion).
    pub steady_s: f64,
    /// Drain seconds (first completion to last join).
    pub drain_s: f64,
}

impl From<RunPhases> for PhaseReport {
    fn from(p: RunPhases) -> Self {
        Self {
            spinup_s: p.spinup.as_secs_f64(),
            steady_s: p.steady.as_secs_f64(),
            drain_s: p.drain.as_secs_f64(),
        }
    }
}

/// Reader-side I/O plane counters (slice cache + disk reads) as serialized
/// into the run report. Populated by the pipeline layer from the shared
/// `mri::IoStats`; absent when the run did not go through the I/O plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoReport {
    /// Disk reads issued (cached loads + naive subrect reads).
    pub disk_reads: u64,
    /// Bytes read from disk.
    pub bytes_read: u64,
    /// Slice requests served from the cache.
    pub cache_hits: u64,
    /// Slice requests that went to disk.
    pub cache_misses: u64,
    /// Slices loaded by read-ahead before demand.
    pub prefetched: u64,
    /// Loads the cache's byte budget refused to retain.
    pub budget_rejects: u64,
    /// Peak bytes retained by the slice cache.
    pub retained_high_water: u64,
}

/// Result-store counters as serialized into the run report: how much of
/// the run was served from the content-addressed store versus recomputed.
/// Populated by the pipeline layer from its shared store stats; absent
/// when the run had no store attached. Every chunk-packet lookup counts
/// exactly one of `hits`/`misses`, so `hits + misses` equals the number
/// of texture lookups the run performed (one per chunk for the combined
/// filter) and CI can assert "warm run: hits == chunk count" directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreReport {
    /// Lookups served from the store.
    pub hits: u64,
    /// Lookups that recomputed (absent, unreadable or corrupt blob).
    pub misses: u64,
    /// Blobs staged for publication by this run.
    pub published: u64,
    /// Payload bytes served from the store.
    pub bytes_served: u64,
    /// Payload bytes staged for publication.
    pub bytes_published: u64,
    /// Blobs rejected (and evicted) for failing validation; each also
    /// counted as a miss, never served.
    pub corrupt_rejected: u64,
}

/// Per-peer transport counters of one node process in a distributed run:
/// how well the writer coalesced frames into flushes, how often credit
/// windows stalled a route with data ready, and what compression saved.
/// `frames_sent / flushes` is the measured batching factor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionReport {
    /// Peer node id of this connection.
    pub peer: usize,
    /// Whether payload checksums were negotiated on this connection.
    pub checksum: bool,
    /// Whether payload compression was negotiated on this connection.
    pub compression: bool,
    /// Data frames sent toward the peer.
    pub frames_sent: u64,
    /// Wire bytes written (headers + possibly-compressed payloads + control
    /// frames).
    pub bytes_sent: u64,
    /// Vectored flushes issued; every frame rides exactly one flush.
    pub flushes: u64,
    /// Data frames received from the peer.
    pub frames_recv: u64,
    /// Logical (decompressed) payload bytes received.
    pub bytes_recv: u64,
    /// `Credit` frames sent to the peer.
    pub credits_sent: u64,
    /// Times the writer went to sleep with data ready on a route whose
    /// credit window was empty — the flow-control analogue of
    /// `blocked_send`.
    pub credit_stalls: u64,
    /// Data frames whose payload shipped compressed.
    pub compressed_frames: u64,
    /// Payload bytes saved by compression across those frames.
    pub compression_saved_bytes: u64,
}

/// The serializable run report: graph shape, schedule policies, run phases,
/// per-stream delivery aggregates, and the per-copy busy / blocked-send /
/// blocked-recv breakdown of paper Figure 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Report format version.
    pub schema_version: u32,
    /// End-to-end wall seconds of the run.
    pub wall_s: f64,
    /// Spin-up / steady / drain split.
    pub phases: PhaseReport,
    /// Declared filters and their copy counts.
    pub filters: Vec<FilterShape>,
    /// Per-stream aggregates (policy, capacity, deliveries, high water).
    pub streams: Vec<StreamStats>,
    /// Per-copy breakdown, sorted by (filter, copy).
    pub per_copy: Vec<CopyReport>,
    /// Reader-side I/O plane counters, when the run recorded them.
    /// Additive and optional, so schema version 1 documents stay valid.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub io: Option<IoReport>,
    /// Buffer-pool counters, when the run recorded them.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub pool: Option<crate::pool::PoolReport>,
    /// Per-peer transport counters, present only for distributed runs.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub transport: Option<Vec<ConnectionReport>>,
    /// Result-store counters, present only when a store was attached.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub store: Option<StoreReport>,
}

/// Current [`RunReport::schema_version`].
pub const RUN_REPORT_SCHEMA_VERSION: u32 = 1;

impl RunReport {
    /// Builds a report from a completed run of `spec`.
    pub fn new(spec: &GraphSpec, outcome: &RunOutcome) -> Self {
        Self {
            schema_version: RUN_REPORT_SCHEMA_VERSION,
            wall_s: outcome.stats.wall.as_secs_f64(),
            phases: outcome.phases.into(),
            filters: spec
                .filters
                .iter()
                .map(|f| FilterShape {
                    name: f.name.clone(),
                    copies: f.copies,
                })
                .collect(),
            streams: outcome.streams.clone(),
            per_copy: outcome
                .stats
                .per_copy
                .iter()
                .map(CopyReport::from)
                .collect(),
            io: None,
            pool: None,
            transport: (!outcome.transport.is_empty()).then(|| outcome.transport.clone()),
            store: None,
        }
    }

    /// Builds a report for the partition of `spec` that ran on `node` in a
    /// distributed run: declared copy counts are restricted to the copies
    /// placed on that node, so [`RunReport::check`]'s rows-versus-declared
    /// invariant holds per process even though each process only hosts a
    /// slice of the graph.
    pub fn for_node(spec: &GraphSpec, outcome: &RunOutcome, node: usize) -> Self {
        let mut report = Self::new(spec, outcome);
        for (shape, decl) in report.filters.iter_mut().zip(&spec.filters) {
            shape.copies = decl.placement.iter().filter(|&&n| n == node).count();
        }
        report.filters.retain(|f| f.copies > 0);
        report
    }

    /// All per-copy rows of `filter`.
    pub fn copies_of(&self, filter: &str) -> Vec<&CopyReport> {
        self.per_copy
            .iter()
            .filter(|c| c.filter == filter)
            .collect()
    }

    /// Validates the report's internal invariants; returns the first
    /// violation found. Used by tests and the CI schema check.
    ///
    /// * every declared copy has exactly one per-copy row;
    /// * per copy, `busy + blocked_send + blocked_recv <= wall` and the
    ///   copy's wall fits inside the run's wall;
    /// * per stream, the sampled high-water mark never exceeds capacity;
    /// * the three phases partition the run (their sum fits in the wall).
    pub fn check(&self) -> Result<(), String> {
        // Durations are measured disjointly on each thread; the slack
        // absorbs only f64 rounding, not measurement error.
        const EPS: f64 = 1e-6;
        let declared: usize = self.filters.iter().map(|f| f.copies).sum();
        if self.per_copy.len() != declared {
            return Err(format!(
                "{} per-copy rows for {declared} declared copies",
                self.per_copy.len()
            ));
        }
        for c in &self.per_copy {
            let accounted = c.busy_s + c.blocked_send_s + c.blocked_recv_s;
            if accounted > c.wall_s + EPS {
                return Err(format!(
                    "{}#{}: busy+blocked {accounted:.6}s exceeds wall {:.6}s",
                    c.filter, c.copy, c.wall_s
                ));
            }
            if c.wall_s > self.wall_s + EPS {
                return Err(format!(
                    "{}#{}: copy wall {:.6}s exceeds run wall {:.6}s",
                    c.filter, c.copy, c.wall_s, self.wall_s
                ));
            }
        }
        for s in &self.streams {
            if s.depth_high_water > s.capacity {
                return Err(format!(
                    "stream {:?}: high water {} exceeds capacity {}",
                    s.name, s.depth_high_water, s.capacity
                ));
            }
        }
        let phase_sum = self.phases.spinup_s + self.phases.steady_s + self.phases.drain_s;
        if phase_sum > self.wall_s + EPS {
            return Err(format!(
                "phase sum {phase_sum:.6}s exceeds wall {:.6}s",
                self.wall_s
            ));
        }
        Ok(())
    }

    /// Pretty-printed JSON form of the report.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("run report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_and_keeps_high_water() {
        let m = StreamMeter::default();
        m.record(10, 1);
        m.record(30, 4);
        m.record(5, 2);
        assert_eq!(m.buffers(), 3);
        assert_eq!(m.bytes(), 45);
        assert_eq!(m.depth_high_water(), 4);
    }

    fn report() -> RunReport {
        RunReport {
            schema_version: RUN_REPORT_SCHEMA_VERSION,
            wall_s: 1.0,
            phases: PhaseReport {
                spinup_s: 0.1,
                steady_s: 0.5,
                drain_s: 0.2,
            },
            filters: vec![FilterShape {
                name: "a".into(),
                copies: 1,
            }],
            streams: vec![StreamStats {
                name: "s".into(),
                from: "a".into(),
                to: "b".into(),
                policy: SchedulePolicy::RoundRobin,
                capacity: 4,
                queues: 1,
                buffers: 7,
                bytes: 70,
                depth_high_water: 3,
            }],
            per_copy: vec![CopyReport {
                filter: "a".into(),
                copy: 0,
                buffers_in: 0,
                buffers_out: 7,
                bytes_in: 0,
                bytes_out: 70,
                busy_s: 0.4,
                blocked_send_s: 0.3,
                blocked_recv_s: 0.1,
                wall_s: 0.9,
            }],
            io: None,
            pool: None,
            transport: None,
            store: None,
        }
    }

    #[test]
    fn check_accepts_consistent_report() {
        assert_eq!(report().check(), Ok(()));
    }

    #[test]
    fn check_rejects_overaccounted_copy() {
        let mut r = report();
        r.per_copy[0].busy_s = 0.9; // 0.9 + 0.3 + 0.1 > 0.9 wall
        let e = r.check().unwrap_err();
        assert!(e.contains("exceeds wall"), "{e}");
    }

    #[test]
    fn check_rejects_high_water_above_capacity() {
        let mut r = report();
        r.streams[0].depth_high_water = 5;
        let e = r.check().unwrap_err();
        assert!(e.contains("high water"), "{e}");
    }

    #[test]
    fn check_rejects_missing_copy_rows() {
        let mut r = report();
        r.filters[0].copies = 2;
        let e = r.check().unwrap_err();
        assert!(e.contains("per-copy rows"), "{e}");
    }

    #[test]
    fn json_roundtrip_preserves_report() {
        let r = report();
        let back: RunReport = serde_json::from_str(&r.to_json_pretty()).unwrap();
        assert_eq!(r, back);
    }
}
