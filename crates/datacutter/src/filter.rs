//! The filter programming interface.
//!
//! A filter implements up to three callbacks:
//!
//! * [`Filter::start`] — called once before any input arrives; **source
//!   filters produce their entire output here** (e.g. RFR reading slices
//!   from disk);
//! * [`Filter::process`] — called once per arriving buffer, with the input
//!   port it arrived on;
//! * [`Filter::finish`] — called after every input stream has ended; used
//!   to flush partially filled output buffers.
//!
//! Filters emit buffers through the [`FilterContext`] handed to each
//! callback; emission blocks when the downstream queue is full, which is
//! what creates pipeline backpressure.

use crate::buffer::DataBuffer;
use crate::schedule::{Route, SchedulePolicy};
use crossbeam::channel::Sender;
use std::fmt;

/// An error escaping a filter callback; aborts the whole graph run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterError(pub String);

impl FilterError {
    /// Creates an error with a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "filter error: {}", self.0)
    }
}

impl std::error::Error for FilterError {}

impl From<std::io::Error> for FilterError {
    fn from(e: std::io::Error) -> Self {
        Self(format!("I/O error: {e}"))
    }
}

/// A filter instance. One value of this trait is created per copy by the
/// application's filter factory; the engine drives its callbacks from the
/// copy's thread.
pub trait Filter: Send {
    /// Called once before any input; sources emit all their data here.
    fn start(&mut self, _ctx: &mut FilterContext) -> Result<(), FilterError> {
        Ok(())
    }

    /// Called for each buffer arriving on input port `port` (the index into
    /// the filter's input streams in graph declaration order).
    fn process(
        &mut self,
        port: usize,
        buf: DataBuffer,
        ctx: &mut FilterContext,
    ) -> Result<(), FilterError>;

    /// Called once after all input streams have ended.
    fn finish(&mut self, _ctx: &mut FilterContext) -> Result<(), FilterError> {
        Ok(())
    }
}

/// A message traveling along a stream: the buffer plus the consumer-side
/// input port it belongs to.
#[derive(Debug, Clone)]
pub(crate) struct Msg {
    pub port: usize,
    pub buf: DataBuffer,
}

/// One output port of a running filter copy: the policy plus the sender(s)
/// reaching the consumer copies.
pub(crate) struct OutPort {
    pub policy: SchedulePolicy,
    /// Consumer-side input port index this output feeds.
    pub dest_port: usize,
    /// One sender per consumer copy for private-queue policies; a single
    /// sender for the shared demand-driven queue.
    pub senders: Vec<Sender<Msg>>,
    /// Consumer copy count (for routing; may differ from `senders.len()`
    /// under demand-driven).
    pub consumer_copies: usize,
    /// Producer-local sequence number on this port (drives round-robin).
    pub seq: u64,
}

/// Execution context handed to filter callbacks: emission, identity, and
/// byte accounting.
pub struct FilterContext {
    pub(crate) filter_name: String,
    pub(crate) copy_index: usize,
    pub(crate) num_copies: usize,
    pub(crate) outputs: Vec<OutPort>,
    pub(crate) buffers_out: u64,
    pub(crate) bytes_out: u64,
}

impl FilterContext {
    /// This copy's index among the filter's copies (`0..num_copies`).
    pub fn copy_index(&self) -> usize {
        self.copy_index
    }

    /// Total number of copies of this filter.
    pub fn num_copies(&self) -> usize {
        self.num_copies
    }

    /// Number of output ports of this filter.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// The filter's declared name.
    pub fn filter_name(&self) -> &str {
        &self.filter_name
    }

    /// Emits a buffer on output port `port`, blocking while the target
    /// queue is full. Fails if the downstream filter has terminated (e.g.
    /// after an error elsewhere in the graph) — producers then unwind
    /// instead of deadlocking.
    pub fn emit(&mut self, port: usize, buf: DataBuffer) -> Result<(), FilterError> {
        let out = self
            .outputs
            .get_mut(port)
            .unwrap_or_else(|| panic!("output port {port} out of range"));
        let size = buf.size_bytes() as u64;
        let route = out.policy.route(out.seq, buf.tag(), out.consumer_copies);
        out.seq += 1;
        let send = |s: &Sender<Msg>, buf: DataBuffer| {
            s.send(Msg {
                port: out.dest_port,
                buf,
            })
            .map_err(|_| FilterError::msg("downstream filter terminated"))
        };
        match route {
            Route::One(i) => send(&out.senders[i], buf)?,
            Route::Shared => send(&out.senders[0], buf)?,
            Route::All => {
                for s in &out.senders {
                    send(s, buf.clone())?;
                }
            }
        }
        self.buffers_out += 1;
        self.bytes_out += size;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    fn ctx_with(
        policy: SchedulePolicy,
        n: usize,
    ) -> (FilterContext, Vec<crossbeam::channel::Receiver<Msg>>) {
        let mut senders = Vec::new();
        let mut receivers = Vec::new();
        let queues = if policy.uses_private_queues() { n } else { 1 };
        for _ in 0..queues {
            let (s, r) = bounded(16);
            senders.push(s);
            receivers.push(r);
        }
        let ctx = FilterContext {
            filter_name: "test".into(),
            copy_index: 0,
            num_copies: 1,
            outputs: vec![OutPort {
                policy,
                dest_port: 0,
                senders,
                consumer_copies: n,
                seq: 0,
            }],
            buffers_out: 0,
            bytes_out: 0,
        };
        (ctx, receivers)
    }

    #[test]
    fn round_robin_emission_cycles_queues() {
        let (mut ctx, rx) = ctx_with(SchedulePolicy::RoundRobin, 3);
        for i in 0..6 {
            ctx.emit(0, DataBuffer::new(i as u32, 4, 0)).unwrap();
        }
        for r in &rx {
            assert_eq!(r.len(), 2, "round robin must balance");
        }
        assert_eq!(ctx.buffers_out, 6);
        assert_eq!(ctx.bytes_out, 24);
    }

    #[test]
    fn tag_modulo_routes_by_tag() {
        let (mut ctx, rx) = ctx_with(SchedulePolicy::ByTagModulo, 2);
        for tag in [0u64, 2, 4, 1] {
            ctx.emit(0, DataBuffer::new((), 1, tag)).unwrap();
        }
        assert_eq!(rx[0].len(), 3);
        assert_eq!(rx[1].len(), 1);
    }

    #[test]
    fn broadcast_clones_to_all() {
        let (mut ctx, rx) = ctx_with(SchedulePolicy::Broadcast, 3);
        ctx.emit(0, DataBuffer::new(7u8, 1, 0)).unwrap();
        for r in &rx {
            let msg = r.try_recv().unwrap();
            assert_eq!(*msg.buf.expect::<u8>(), 7);
        }
        // One logical emission even though three queues were written.
        assert_eq!(ctx.buffers_out, 1);
    }

    #[test]
    fn emit_to_dead_consumer_errors() {
        let (mut ctx, rx) = ctx_with(SchedulePolicy::RoundRobin, 1);
        drop(rx);
        let e = ctx.emit(0, DataBuffer::new((), 1, 0)).unwrap_err();
        assert!(e.0.contains("terminated"));
    }
}
