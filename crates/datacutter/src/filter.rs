//! The filter programming interface.
//!
//! A filter implements up to three callbacks:
//!
//! * [`Filter::start`] — called once before any input arrives; **source
//!   filters produce their entire output here** (e.g. RFR reading slices
//!   from disk);
//! * [`Filter::process`] — called once per arriving buffer, with the input
//!   port it arrived on;
//! * [`Filter::finish`] — called after every input stream has ended; used
//!   to flush partially filled output buffers.
//!
//! Filters emit buffers through the [`FilterContext`] handed to each
//! callback; emission blocks when the downstream queue is full, which is
//! what creates pipeline backpressure.
//!
//! Errors escaping a callback are **typed**: every [`FilterError`] carries a
//! [`FilterErrorKind`] plus (once the engine has seen it) the name and copy
//! index of the filter it escaped from, so the engine can tell an
//! application failure from an I/O failure, a contained panic, or the
//! cascade symptom of a consumer dying elsewhere in the graph.

use crate::buffer::DataBuffer;
use crate::metrics::StreamMeter;
use crate::schedule::{Route, SchedulePolicy};
use crossbeam::channel::Sender;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Classifies a [`FilterError`]; drives the engine's root-cause selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterErrorKind {
    /// An application-level failure returned by a filter callback.
    App,
    /// An I/O failure (converted from [`std::io::Error`]).
    Io,
    /// A filter callback panicked; the engine contained the unwind and
    /// converted the payload into this error.
    Panic,
    /// An `emit` failed because the consumer filter terminated — a cascade
    /// *symptom*, never reported as the root cause when any other error
    /// kind is present.
    DownstreamClosed,
    /// An engine-internal failure: invalid graph, missing factory, thread
    /// spawn failure, or a worker dying outside panic containment.
    Engine,
}

impl fmt::Display for FilterErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FilterErrorKind::App => "app",
            FilterErrorKind::Io => "io",
            FilterErrorKind::Panic => "panic",
            FilterErrorKind::DownstreamClosed => "downstream-closed",
            FilterErrorKind::Engine => "engine",
        };
        f.write_str(s)
    }
}

/// An error escaping a filter callback; aborts the whole graph run.
///
/// Construct application errors with [`FilterError::msg`]; the other kinds
/// are produced by the runtime (`From<io::Error>`, the engine's panic
/// containment, `emit`'s downstream tracking). The engine stamps the
/// failing filter's name and copy index onto every error it collects, so
/// `run_graph`'s reported root cause always names its origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterError {
    kind: FilterErrorKind,
    message: String,
    filter: Option<String>,
    copy: Option<usize>,
}

impl FilterError {
    /// Creates an application-level (`App`-kind) error with a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Self::new(FilterErrorKind::App, m)
    }

    /// Creates an error of an explicit kind.
    pub fn new(kind: FilterErrorKind, m: impl Into<String>) -> Self {
        Self {
            kind,
            message: m.into(),
            filter: None,
            copy: None,
        }
    }

    /// Creates a `Panic`-kind error from a contained panic payload message.
    pub fn panic(m: impl Into<String>) -> Self {
        Self::new(FilterErrorKind::Panic, m)
    }

    /// Creates an `Engine`-kind error.
    pub fn engine(m: impl Into<String>) -> Self {
        Self::new(FilterErrorKind::Engine, m)
    }

    /// Creates a `DownstreamClosed`-kind error naming the dead consumer.
    pub fn downstream_closed(m: impl Into<String>) -> Self {
        Self::new(FilterErrorKind::DownstreamClosed, m)
    }

    /// The error's kind.
    pub fn kind(&self) -> FilterErrorKind {
        self.kind
    }

    /// The bare message (no kind/origin decoration).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Name of the filter the error escaped from, once the engine has
    /// stamped it.
    pub fn filter(&self) -> Option<&str> {
        self.filter.as_deref()
    }

    /// Copy index of the filter copy the error escaped from.
    pub fn copy(&self) -> Option<usize> {
        self.copy
    }

    /// Whether this error is a cascade symptom (a producer noticing that a
    /// consumer died) rather than an originating failure.
    pub fn is_cascade(&self) -> bool {
        self.kind == FilterErrorKind::DownstreamClosed
    }

    /// Stamps the originating filter copy, unless already stamped.
    pub fn with_origin(mut self, filter: &str, copy: usize) -> Self {
        if self.filter.is_none() {
            self.filter = Some(filter.to_string());
            self.copy = Some(copy);
        }
        self
    }
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "filter error [{}]", self.kind)?;
        if let (Some(name), Some(copy)) = (&self.filter, self.copy) {
            write!(f, " in {name}#{copy}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for FilterError {}

impl From<std::io::Error> for FilterError {
    fn from(e: std::io::Error) -> Self {
        Self::new(FilterErrorKind::Io, format!("I/O error: {e}"))
    }
}

/// A filter instance. One value of this trait is created per copy by the
/// application's filter factory; the engine drives its callbacks from the
/// copy's thread.
pub trait Filter: Send {
    /// Called once before any input; sources emit all their data here.
    fn start(&mut self, _ctx: &mut FilterContext) -> Result<(), FilterError> {
        Ok(())
    }

    /// Called for each buffer arriving on input port `port` (the index into
    /// the filter's input streams in graph declaration order).
    fn process(
        &mut self,
        port: usize,
        buf: DataBuffer,
        ctx: &mut FilterContext,
    ) -> Result<(), FilterError>;

    /// Called once after all input streams have ended.
    fn finish(&mut self, _ctx: &mut FilterContext) -> Result<(), FilterError> {
        Ok(())
    }
}

/// A message traveling along a stream: the buffer plus the consumer-side
/// input port it belongs to.
#[derive(Debug, Clone)]
pub(crate) struct Msg {
    pub port: usize,
    pub buf: DataBuffer,
}

/// One output port of a running filter copy: the policy plus the sender(s)
/// reaching the consumer copies.
pub(crate) struct OutPort {
    pub policy: SchedulePolicy,
    /// Consumer filter name (for diagnostics in emit errors).
    pub dest_filter: String,
    /// Consumer-side input port index this output feeds.
    pub dest_port: usize,
    /// One sender per consumer copy for private-queue policies; a single
    /// sender for the shared demand-driven queue.
    pub senders: Vec<Sender<Msg>>,
    /// Consumer copy count (for routing; may differ from `senders.len()`
    /// under demand-driven).
    pub consumer_copies: usize,
    /// Producer-local sequence number on this port (drives round-robin).
    pub seq: u64,
    /// Shared meter of the stream this port feeds (delivery counts and
    /// queue-depth high water, see [`StreamMeter`]).
    pub meter: Arc<StreamMeter>,
}

/// Execution context handed to filter callbacks: emission, identity, and
/// byte accounting.
pub struct FilterContext {
    pub(crate) filter_name: String,
    pub(crate) copy_index: usize,
    pub(crate) num_copies: usize,
    pub(crate) outputs: Vec<OutPort>,
    pub(crate) buffers_out: u64,
    pub(crate) bytes_out: u64,
    /// Cumulative time this copy's `emit` calls spent inside channel sends —
    /// predominantly blocking on full downstream queues. Runs inside
    /// callback time, so the engine reports busy net of this.
    pub(crate) blocked_send: Duration,
    /// Run-level failure flag, shared by every copy of the run. A failing
    /// copy raises it *before* dropping its channel endpoints, so by the
    /// time end-of-stream cascades to a downstream filter the flag is
    /// already visible.
    pub(crate) failed: Arc<AtomicBool>,
    /// Cooperative cancellation flag shared with the run's owner (see
    /// [`crate::EngineConfig::cancel`]); `None` on uncancellable runs.
    pub(crate) cancel: Option<Arc<AtomicBool>>,
}

impl FilterContext {
    /// This copy's index among the filter's copies (`0..num_copies`).
    pub fn copy_index(&self) -> usize {
        self.copy_index
    }

    /// Total number of copies of this filter.
    pub fn num_copies(&self) -> usize {
        self.num_copies
    }

    /// Number of output ports of this filter.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// The filter's declared name.
    pub fn filter_name(&self) -> &str {
        &self.filter_name
    }

    /// Whether any filter copy of this run has already failed (error or
    /// panic). A failing copy raises the flag before it releases its
    /// channels, so a sink that observes end-of-stream and then reads
    /// `false` here is guaranteed the streams above it all ended cleanly.
    /// Output filters use this in `finish` to withhold commitment (e.g. the
    /// atomic rename of a `.tmp` file) on aborted runs.
    pub fn run_failed(&self) -> bool {
        self.failed.load(Ordering::SeqCst)
    }

    /// Whether cooperative cancellation has been requested for this run
    /// (see [`crate::EngineConfig::cancel`]). Always `false` on runs
    /// started without a cancel flag.
    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::SeqCst))
    }

    /// Bails with an `App`-kind "run cancelled" error when cancellation has
    /// been requested. The engine checks the flag at callback boundaries;
    /// long-running *source* filters (which do all their work inside one
    /// `start` call) call this between emissions so a cancel lands promptly
    /// even with no input queue to poll.
    pub fn check_cancelled(&self) -> Result<(), FilterError> {
        if self.cancelled() {
            Err(FilterError::msg(crate::engine::CANCEL_MESSAGE))
        } else {
            Ok(())
        }
    }

    /// Emits a buffer on output port `port`, blocking while the target
    /// queue is full. Fails with a [`FilterErrorKind::DownstreamClosed`]
    /// error naming the consumer if the downstream filter has terminated
    /// (e.g. after an error elsewhere in the graph) — producers then unwind
    /// instead of deadlocking.
    ///
    /// A broadcast that fails part-way still accounts the emission if at
    /// least one consumer copy received the buffer (those copies hold live
    /// references), and the error reports how many copies were delivered.
    pub fn emit(&mut self, port: usize, buf: DataBuffer) -> Result<(), FilterError> {
        let out = self
            .outputs
            .get_mut(port)
            .unwrap_or_else(|| panic!("output port {port} out of range"));
        let size = buf.size_bytes() as u64;
        let route = out.policy.route(out.seq, buf.tag(), out.consumer_copies);
        out.seq += 1;
        let dest_port = out.dest_port;
        let dest = out.dest_filter.as_str();
        let meter = &out.meter;
        // Each send is timed (backpressure shows up here as blocked-send
        // time) and, on success, metered with the queue depth it produced.
        let mut blocked = Duration::ZERO;
        let mut send = |s: &Sender<Msg>, buf: DataBuffer| {
            let t = Instant::now();
            let r = s.send(Msg {
                port: dest_port,
                buf,
            });
            blocked += t.elapsed();
            match r {
                Ok(()) => {
                    meter.record(size, s.len());
                    Ok(())
                }
                Err(_) => Err(FilterError::downstream_closed(format!(
                    "downstream filter {dest:?} terminated"
                ))),
            }
        };
        // `account` is true whenever the buffer reached at least one
        // consumer copy — data that actually left this filter is counted
        // even when the emission ultimately fails part-way.
        let (account, result) = match route {
            Route::One(i) => match send(&out.senders[i], buf) {
                Ok(()) => (true, Ok(())),
                Err(e) => (false, Err(e)),
            },
            Route::Shared => match send(&out.senders[0], buf) {
                Ok(()) => (true, Ok(())),
                Err(e) => (false, Err(e)),
            },
            Route::All => {
                let total = out.senders.len();
                let mut outcome = (true, Ok(()));
                for (delivered, s) in out.senders.iter().enumerate() {
                    if let Err(e) = send(s, buf.clone()) {
                        // Consumers 0..delivered already hold the buffer;
                        // report the partial delivery in the error.
                        outcome = (
                            delivered > 0,
                            Err(FilterError::downstream_closed(format!(
                                "{} after broadcasting to {delivered} of {total} copies",
                                e.message()
                            ))),
                        );
                        break;
                    }
                }
                outcome
            }
        };
        self.blocked_send += blocked;
        if account {
            self.buffers_out += 1;
            self.bytes_out += size;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    fn ctx_with(
        policy: SchedulePolicy,
        n: usize,
    ) -> (FilterContext, Vec<crossbeam::channel::Receiver<Msg>>) {
        let mut senders = Vec::new();
        let mut receivers = Vec::new();
        let queues = if policy.uses_private_queues() { n } else { 1 };
        for _ in 0..queues {
            let (s, r) = bounded(16);
            senders.push(s);
            receivers.push(r);
        }
        let ctx = FilterContext {
            filter_name: "test".into(),
            copy_index: 0,
            num_copies: 1,
            outputs: vec![OutPort {
                policy,
                dest_filter: "consumer".into(),
                dest_port: 0,
                senders,
                consumer_copies: n,
                seq: 0,
                meter: Arc::new(StreamMeter::default()),
            }],
            buffers_out: 0,
            bytes_out: 0,
            blocked_send: Duration::ZERO,
            failed: Arc::new(AtomicBool::new(false)),
            cancel: None,
        };
        (ctx, receivers)
    }

    #[test]
    fn round_robin_emission_cycles_queues() {
        let (mut ctx, rx) = ctx_with(SchedulePolicy::RoundRobin, 3);
        for i in 0..6 {
            ctx.emit(0, DataBuffer::new(i as u32, 4, 0)).unwrap();
        }
        for r in &rx {
            assert_eq!(r.len(), 2, "round robin must balance");
        }
        assert_eq!(ctx.buffers_out, 6);
        assert_eq!(ctx.bytes_out, 24);
    }

    #[test]
    fn tag_modulo_routes_by_tag() {
        let (mut ctx, rx) = ctx_with(SchedulePolicy::ByTagModulo, 2);
        for tag in [0u64, 2, 4, 1] {
            ctx.emit(0, DataBuffer::new((), 1, tag)).unwrap();
        }
        assert_eq!(rx[0].len(), 3);
        assert_eq!(rx[1].len(), 1);
    }

    #[test]
    fn broadcast_clones_to_all() {
        let (mut ctx, rx) = ctx_with(SchedulePolicy::Broadcast, 3);
        ctx.emit(0, DataBuffer::new(7u8, 1, 0)).unwrap();
        for r in &rx {
            let msg = r.try_recv().unwrap();
            assert_eq!(*msg.buf.expect::<u8>(), 7);
        }
        // One logical emission even though three queues were written.
        assert_eq!(ctx.buffers_out, 1);
    }

    #[test]
    fn emit_meters_deliveries_per_queue_write() {
        let (mut ctx, rx) = ctx_with(SchedulePolicy::Broadcast, 3);
        ctx.emit(0, DataBuffer::new(7u8, 5, 0)).unwrap();
        ctx.emit(0, DataBuffer::new(8u8, 5, 1)).unwrap();
        let meter = ctx.outputs[0].meter.clone();
        // A broadcast counts once per consumer queue, unlike buffers_out.
        assert_eq!(meter.buffers(), 6);
        assert_eq!(meter.bytes(), 30);
        assert_eq!(meter.depth_high_water(), 2, "sampled after each send");
        assert_eq!(ctx.buffers_out, 2);
        drop(rx);
    }

    #[test]
    fn emit_to_dead_consumer_errors() {
        let (mut ctx, rx) = ctx_with(SchedulePolicy::RoundRobin, 1);
        drop(rx);
        let e = ctx.emit(0, DataBuffer::new((), 1, 0)).unwrap_err();
        assert_eq!(e.kind(), FilterErrorKind::DownstreamClosed);
        assert!(e.is_cascade());
        assert!(
            e.message().contains("\"consumer\""),
            "destination filter missing from {e}"
        );
    }

    #[test]
    fn partial_broadcast_accounts_delivered_copies() {
        let (mut ctx, mut rx) = ctx_with(SchedulePolicy::Broadcast, 3);
        // Kill the last consumer copy: copies 0 and 1 still receive.
        drop(rx.pop());
        let e = ctx.emit(0, DataBuffer::new(9u8, 5, 0)).unwrap_err();
        assert_eq!(e.kind(), FilterErrorKind::DownstreamClosed);
        assert!(
            e.message().contains("2 of 3"),
            "partial delivery not reported: {e}"
        );
        // The buffer did leave this filter — stats must say so.
        assert_eq!(ctx.buffers_out, 1);
        assert_eq!(ctx.bytes_out, 5);
        for r in &rx {
            assert_eq!(r.len(), 1, "live copies must have received the buffer");
        }
    }

    #[test]
    fn failed_broadcast_to_first_copy_accounts_nothing() {
        let (mut ctx, mut rx) = ctx_with(SchedulePolicy::Broadcast, 2);
        rx.remove(0);
        let e = ctx.emit(0, DataBuffer::new(1u8, 4, 0)).unwrap_err();
        assert!(e.message().contains("0 of 2"), "got: {e}");
        assert_eq!(ctx.buffers_out, 0);
        assert_eq!(ctx.bytes_out, 0);
    }

    #[test]
    fn error_origin_stamping_is_first_writer_wins() {
        let e = FilterError::msg("boom").with_origin("HMP", 2);
        assert_eq!(e.filter(), Some("HMP"));
        assert_eq!(e.copy(), Some(2));
        let e2 = e.with_origin("USO", 0);
        assert_eq!(e2.filter(), Some("HMP"), "origin must not be overwritten");
    }

    #[test]
    fn display_includes_kind_and_origin() {
        let e = FilterError::panic("index out of bounds").with_origin("HIC", 0);
        let s = e.to_string();
        assert!(s.contains("[panic]"), "{s}");
        assert!(s.contains("HIC#0"), "{s}");
        assert!(s.contains("index out of bounds"), "{s}");
    }

    #[test]
    fn io_errors_convert_with_io_kind() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: FilterError = io.into();
        assert_eq!(e.kind(), FilterErrorKind::Io);
        assert!(e.message().contains("gone"));
    }
}
