//! Recycled buffer allocations for the hot pipeline path.
//!
//! The stitching and assembly filters allocate large `Vec<u16>` planes and
//! volume backing stores once per piece/chunk and drop them immediately
//! after the downstream hop — a steady allocator churn proportional to the
//! dataset, not to the working set. [`BufferPool`] keeps dropped backing
//! stores on type-keyed shelves and hands them back (cleared, capacity
//! intact) to the next taker, so steady-state runs recycle a small fixed
//! set of allocations. High-water and reuse counters surface in the run
//! report as [`PoolReport`].
//!
//! The pool is deliberately *semantics-free*: a `take` is always equivalent
//! to `Vec::with_capacity`, and a `put` is always optional. Dropping a
//! buffer instead of returning it is never a leak, only a missed reuse.

use serde::{Deserialize, Serialize};
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Buffers kept per element type; beyond this, returned buffers are dropped.
/// Sized for the deepest concurrent user (one stitch plane + one assembly
/// store per in-flight chunk per filter copy).
const SHELF_CAP: usize = 16;

/// A shelf of recycled `Vec<T>` backing stores for one element type.
struct Shelf {
    buffers: Vec<Box<dyn Any + Send>>,
    /// Bytes currently parked on this shelf (element capacity, not length).
    bytes: usize,
}

/// A thread-safe pool of recycled `Vec` allocations, keyed by element type.
#[derive(Default)]
pub struct BufferPool {
    shelves: Mutex<HashMap<TypeId, Shelf>>,
    takes: AtomicU64,
    reuses: AtomicU64,
    puts: AtomicU64,
    recycled_bytes: AtomicU64,
    pooled_bytes_high_water: AtomicU64,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns an empty `Vec<T>` with at least `capacity` slots, reusing a
    /// previously returned allocation when one is shelved. Equivalent to
    /// `Vec::with_capacity(capacity)` in every observable way except the
    /// allocator traffic.
    pub fn take<T: Send + 'static>(&self, capacity: usize) -> Vec<T> {
        self.takes.fetch_add(1, Ordering::Relaxed);
        let recycled: Option<Vec<T>> = {
            let mut shelves = self.shelves.lock().expect("pool lock");
            shelves.get_mut(&TypeId::of::<Vec<T>>()).and_then(|shelf| {
                let boxed = shelf.buffers.pop()?;
                let v = *boxed.downcast::<Vec<T>>().expect("shelf keyed by type");
                shelf.bytes -= v.capacity() * std::mem::size_of::<T>();
                Some(v)
            })
        };
        match recycled {
            Some(mut v) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                self.recycled_bytes.fetch_add(
                    (v.capacity() * std::mem::size_of::<T>()) as u64,
                    Ordering::Relaxed,
                );
                if v.capacity() < capacity {
                    v.reserve(capacity);
                }
                v
            }
            None => Vec::with_capacity(capacity),
        }
    }

    /// Shelves a no-longer-needed buffer for reuse. The buffer is cleared;
    /// its capacity is what gets recycled. Buffers beyond the per-type shelf
    /// cap, and zero-capacity buffers, are simply dropped.
    pub fn put<T: Send + 'static>(&self, mut buf: Vec<T>) {
        buf.clear();
        if buf.capacity() == 0 {
            return;
        }
        let bytes = buf.capacity() * std::mem::size_of::<T>();
        let mut shelves = self.shelves.lock().expect("pool lock");
        let shelf = shelves.entry(TypeId::of::<Vec<T>>()).or_insert(Shelf {
            buffers: Vec::new(),
            bytes: 0,
        });
        if shelf.buffers.len() >= SHELF_CAP {
            return;
        }
        self.puts.fetch_add(1, Ordering::Relaxed);
        shelf.buffers.push(Box::new(buf));
        shelf.bytes += bytes;
        let total: usize = shelves.values().map(|s| s.bytes).sum();
        self.pooled_bytes_high_water
            .fetch_max(total as u64, Ordering::Relaxed);
    }

    /// Snapshot of the pool's counters for the run report.
    pub fn report(&self) -> PoolReport {
        PoolReport {
            takes: self.takes.load(Ordering::Relaxed),
            reuses: self.reuses.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            recycled_bytes: self.recycled_bytes.load(Ordering::Relaxed),
            pooled_bytes_high_water: self.pooled_bytes_high_water.load(Ordering::Relaxed),
        }
    }
}

/// Buffer-pool counters as serialized into the run report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolReport {
    /// Buffers requested from the pool.
    pub takes: u64,
    /// Requests satisfied by a recycled allocation.
    pub reuses: u64,
    /// Buffers returned to the pool (post-cap drops excluded).
    pub puts: u64,
    /// Total capacity bytes served from recycled allocations.
    pub recycled_bytes: u64,
    /// Peak bytes parked on shelves at once.
    pub pooled_bytes_high_water: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_without_put_allocates_fresh() {
        let pool = BufferPool::new();
        let v: Vec<u16> = pool.take(64);
        assert!(v.is_empty() && v.capacity() >= 64);
        let r = pool.report();
        assert_eq!((r.takes, r.reuses), (1, 0));
    }

    #[test]
    fn put_then_take_reuses_the_allocation() {
        let pool = BufferPool::new();
        let mut v: Vec<u16> = Vec::with_capacity(128);
        v.extend_from_slice(&[1, 2, 3]);
        let cap = v.capacity();
        pool.put(v);
        let w: Vec<u16> = pool.take(64);
        assert!(w.is_empty(), "recycled buffers come back cleared");
        assert_eq!(w.capacity(), cap);
        let r = pool.report();
        assert_eq!((r.takes, r.reuses, r.puts), (1, 1, 1));
        assert_eq!(r.recycled_bytes, (cap * 2) as u64);
        assert!(r.pooled_bytes_high_water >= (cap * 2) as u64);
    }

    #[test]
    fn undersized_recycled_buffer_is_grown() {
        let pool = BufferPool::new();
        pool.put::<u16>(Vec::with_capacity(8));
        let v: Vec<u16> = pool.take(100);
        assert!(v.capacity() >= 100);
    }

    #[test]
    fn types_do_not_cross_shelves() {
        let pool = BufferPool::new();
        pool.put::<u16>(Vec::with_capacity(32));
        let v: Vec<u64> = pool.take(8);
        assert!(v.capacity() >= 8);
        assert_eq!(pool.report().reuses, 0, "u64 take must not see u16 shelf");
        let w: Vec<u16> = pool.take(8);
        assert_eq!(w.capacity(), 32);
        assert_eq!(pool.report().reuses, 1);
    }

    #[test]
    fn shelf_cap_bounds_parked_buffers() {
        let pool = BufferPool::new();
        for _ in 0..SHELF_CAP + 5 {
            pool.put::<u16>(Vec::with_capacity(16));
        }
        assert_eq!(pool.report().puts as usize, SHELF_CAP, "overflow dropped");
        for _ in 0..SHELF_CAP + 5 {
            let _: Vec<u16> = pool.take(16);
        }
        // Only the shelved buffers could be reused; the overflow was dropped.
        assert_eq!(pool.report().reuses as usize, SHELF_CAP);
    }

    #[test]
    fn zero_capacity_put_is_dropped() {
        let pool = BufferPool::new();
        pool.put::<u16>(Vec::new());
        assert_eq!(pool.report().puts, 0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let pool = BufferPool::new();
        pool.put::<u16>(Vec::with_capacity(4));
        let _: Vec<u16> = pool.take(4);
        let r = pool.report();
        let json = serde_json::to_string(&r).unwrap();
        let back: PoolReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
