//! Fault injection for chaos-testing filter graphs.
//!
//! The production engine promises that a failing filter copy — whether it
//! returns an error or outright panics — drains the graph without deadlock,
//! is reported as the root cause with its name and copy index, and never
//! leaves worker threads running after `run_graph` returns. This module
//! provides the machinery to *prove* that promise under test: a
//! [`FaultPlan`] describes faults to inject (panics, typed errors, delays,
//! and emit-stalls) at a precise point of a named filter copy's lifecycle,
//! and [`FaultPlan::apply_to_factories`] transparently wraps any
//! application's filter factories so real graphs run with the faults armed.
//!
//! The wrapper is a regular [`Filter`] decorating the inner filter, so
//! injected faults exercise exactly the code paths a real misbehaving
//! filter would: a `Panic` fault unwinds out of the same callback frame, an
//! `Error` fault returns through the same `Result`, a `Delay` stalls the
//! copy under backpressure, and an `EmitStall` withholds buffers until
//! `finish` — the late-delivery pattern of a wedged-then-recovered stage.

use crate::engine::FilterFactory;
use crate::filter::{Filter, FilterContext, FilterError};
use crate::DataBuffer;
use std::collections::HashMap;
use std::time::Duration;

/// Which filter callback a fault triggers in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Trigger inside `start`, before delegating to the inner filter.
    Start,
    /// Trigger inside `process`, once the configured buffer count arrives.
    Process,
    /// Trigger inside `finish`, before delegating to the inner filter.
    Finish,
}

/// What the fault does when it triggers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// `panic!` with the fault's label — exercises the engine's
    /// `catch_unwind` containment.
    Panic,
    /// Return an `App`-kind [`FilterError`] carrying the fault's label.
    Error,
    /// Sleep for the duration, then continue normally — models a slow or
    /// momentarily wedged copy under backpressure.
    Delay(Duration),
    /// From the trigger point on, withhold arriving buffers instead of
    /// processing them, then deliver all of them (in arrival order) when
    /// `finish` runs — models a stage that stalls its emissions and
    /// recovers only at end-of-stream. Results must still be complete.
    EmitStall,
}

/// One fault: where it fires and what it does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Name of the filter to arm (must match the graph declaration).
    pub filter: String,
    /// Copy index to arm, or `None` for every copy.
    pub copy: Option<usize>,
    /// Callback the fault triggers in.
    pub site: FaultSite,
    /// For [`FaultSite::Process`]: the 1-based buffer ordinal that triggers
    /// the fault (`1` = the first buffer). Ignored for `Start`/`Finish`.
    pub at_buffer: u64,
    /// The fault's behaviour.
    pub kind: FaultKind,
    /// Diagnostic label; injected into the panic/error message so tests can
    /// match the reported root cause against the schedule.
    pub label: String,
}

impl FaultSpec {
    fn arms(&self, filter: &str, copy: usize) -> bool {
        self.filter == filter && self.copy.is_none_or(|c| c == copy)
    }
}

/// A set of faults to inject into a graph run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled faults.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault and returns the plan (builder style).
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.faults.push(spec);
        self
    }

    /// Shorthand: panic in `filter` copy `copy` at the `at_buffer`-th
    /// processed buffer.
    pub fn panic_at(self, filter: &str, copy: usize, at_buffer: u64) -> Self {
        self.with(FaultSpec {
            filter: filter.to_string(),
            copy: Some(copy),
            site: FaultSite::Process,
            at_buffer,
            kind: FaultKind::Panic,
            label: format!("injected panic in {filter}#{copy}"),
        })
    }

    /// Shorthand: typed error in `filter` copy `copy` at the `at_buffer`-th
    /// processed buffer.
    pub fn error_at(self, filter: &str, copy: usize, at_buffer: u64) -> Self {
        self.with(FaultSpec {
            filter: filter.to_string(),
            copy: Some(copy),
            site: FaultSite::Process,
            at_buffer,
            kind: FaultKind::Error,
            label: format!("injected error in {filter}#{copy}"),
        })
    }

    /// Wraps `inner` with this plan's faults for `(filter, copy)`. Returns
    /// the inner filter unchanged when no fault arms that copy.
    pub fn wrap(&self, filter: &str, copy: usize, inner: Box<dyn Filter>) -> Box<dyn Filter> {
        let armed: Vec<FaultSpec> = self
            .faults
            .iter()
            .filter(|f| f.arms(filter, copy))
            .cloned()
            .collect();
        if armed.is_empty() {
            return inner;
        }
        Box::new(FaultInjector {
            inner,
            armed,
            seen: 0,
            held: Vec::new(),
            stalled: false,
        })
    }

    /// Wraps every factory in `factories` so the engine instantiates
    /// fault-armed filters — the one-line hook for chaos tests over real
    /// application graphs.
    pub fn apply_to_factories(&self, factories: &mut HashMap<String, FilterFactory>) {
        let names: Vec<String> = factories.keys().cloned().collect();
        for name in names {
            if !self.faults.iter().any(|f| f.filter == name) {
                continue;
            }
            let mut inner = factories.remove(&name).expect("key exists");
            let plan = self.clone();
            let fname = name.clone();
            factories.insert(
                name,
                Box::new(move |copy| Ok(plan.wrap(&fname, copy, inner(copy)?))),
            );
        }
    }
}

/// The wrapper filter that realizes a [`FaultPlan`] for one copy.
struct FaultInjector {
    inner: Box<dyn Filter>,
    armed: Vec<FaultSpec>,
    /// Buffers seen by `process` so far (counts the current one).
    seen: u64,
    /// Buffers withheld by an `EmitStall` fault, in arrival order.
    held: Vec<(usize, DataBuffer)>,
    /// Whether an `EmitStall` fault has triggered.
    stalled: bool,
}

impl FaultInjector {
    /// Fires `spec`; returns `Ok(())` for the kinds that continue.
    fn fire(&mut self, spec: &FaultSpec) -> Result<(), FilterError> {
        match &spec.kind {
            FaultKind::Panic => panic!("{}", spec.label),
            FaultKind::Error => Err(FilterError::msg(spec.label.clone())),
            FaultKind::Delay(d) => {
                std::thread::sleep(*d);
                Ok(())
            }
            FaultKind::EmitStall => {
                self.stalled = true;
                Ok(())
            }
        }
    }

    fn fire_site(&mut self, site: FaultSite) -> Result<(), FilterError> {
        let due: Vec<FaultSpec> = self
            .armed
            .iter()
            .filter(|f| f.site == site && (site != FaultSite::Process || f.at_buffer == self.seen))
            .cloned()
            .collect();
        for spec in &due {
            self.fire(spec)?;
        }
        Ok(())
    }
}

impl Filter for FaultInjector {
    fn start(&mut self, ctx: &mut FilterContext) -> Result<(), FilterError> {
        self.fire_site(FaultSite::Start)?;
        self.inner.start(ctx)
    }

    fn process(
        &mut self,
        port: usize,
        buf: DataBuffer,
        ctx: &mut FilterContext,
    ) -> Result<(), FilterError> {
        self.seen += 1;
        self.fire_site(FaultSite::Process)?;
        if self.stalled {
            self.held.push((port, buf));
            return Ok(());
        }
        self.inner.process(port, buf, ctx)
    }

    fn finish(&mut self, ctx: &mut FilterContext) -> Result<(), FilterError> {
        self.fire_site(FaultSite::Finish)?;
        // A stalled copy releases its withheld buffers at end-of-stream,
        // then finishes normally: downstream sees late, not lost, data.
        for (port, buf) in std::mem::take(&mut self.held) {
            self.inner.process(port, buf, ctx)?;
        }
        self.inner.finish(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe {
        processed: u64,
    }

    impl Filter for Probe {
        fn process(
            &mut self,
            _: usize,
            _: DataBuffer,
            _: &mut FilterContext,
        ) -> Result<(), FilterError> {
            self.processed += 1;
            Ok(())
        }
    }

    #[test]
    fn plan_arms_only_matching_copies() {
        let plan = FaultPlan::new().panic_at("w", 1, 3);
        assert!(plan.faults[0].arms("w", 1));
        assert!(!plan.faults[0].arms("w", 0));
        assert!(!plan.faults[0].arms("x", 1));
        let any_copy = FaultPlan::new().with(FaultSpec {
            filter: "w".into(),
            copy: None,
            site: FaultSite::Finish,
            at_buffer: 0,
            kind: FaultKind::Error,
            label: "e".into(),
        });
        assert!(any_copy.faults[0].arms("w", 7));
    }

    #[test]
    fn wrap_is_identity_for_unarmed_copies() {
        let plan = FaultPlan::new().error_at("w", 0, 1);
        // Wrapping a different filter returns a plain probe: process 5
        // buffers without any fault firing.
        let mut f = plan.wrap("other", 0, Box::new(Probe { processed: 0 }));
        let mut ctx = test_ctx();
        for _ in 0..5 {
            f.process(0, DataBuffer::new(0u8, 1, 0), &mut ctx).unwrap();
        }
        f.finish(&mut ctx).unwrap();
    }

    #[test]
    fn error_fault_fires_at_exact_ordinal() {
        let plan = FaultPlan::new().error_at("w", 0, 3);
        let mut f = plan.wrap("w", 0, Box::new(Probe { processed: 0 }));
        let mut ctx = test_ctx();
        f.process(0, DataBuffer::new(0u8, 1, 0), &mut ctx).unwrap();
        f.process(0, DataBuffer::new(0u8, 1, 0), &mut ctx).unwrap();
        let e = f
            .process(0, DataBuffer::new(0u8, 1, 0), &mut ctx)
            .unwrap_err();
        assert!(e.message().contains("injected error in w#0"), "{e}");
    }

    #[test]
    #[should_panic(expected = "injected panic in w#0")]
    fn panic_fault_panics() {
        let plan = FaultPlan::new().panic_at("w", 0, 1);
        let mut f = plan.wrap("w", 0, Box::new(Probe { processed: 0 }));
        let mut ctx = test_ctx();
        let _ = f.process(0, DataBuffer::new(0u8, 1, 0), &mut ctx);
    }

    fn test_ctx() -> FilterContext {
        FilterContext {
            filter_name: "w".into(),
            copy_index: 0,
            num_copies: 1,
            outputs: Vec::new(),
            buffers_out: 0,
            bytes_out: 0,
            blocked_send: Duration::ZERO,
            failed: std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false)),
            cancel: None,
        }
    }
}
