//! Filter-stream middleware — a reproduction of the DataCutter programming
//! model (Beynon, Kurc, Catalyurek, Chang, Sussman, Saltz; paper §4.1).
//!
//! A data-intensive application is expressed as a set of **filters**
//! connected by **streams**: unidirectional pipes that deliver data from
//! producer to consumer filters in user-defined **data buffers**. Filters
//! placed on the same node exchange buffers by pointer copy; remote filters
//! exchange them over the network. Consumer and producer filters run
//! concurrently and process buffers in a pipelined fashion.
//!
//! Filters may be **replicated**:
//!
//! * *transparent copies* — the runtime decides which copy receives each
//!   buffer, either **round-robin** (each copy gets roughly the same number
//!   of buffers) or **demand-driven** (buffers go to the copy that consumes
//!   fastest);
//! * *explicit copies* — the application controls routing, here via a
//!   deterministic tag-modulo rule (used for the IIC stitch filters, where
//!   pieces of the same chunk must meet at the same copy).
//!
//! Two execution backends share this crate's graph description:
//!
//! * the **threaded engine** in [`engine`] — every filter copy is a thread,
//!   streams are bounded channels, real data flows (used for correctness,
//!   examples and single-machine runs);
//! * the **discrete-event simulator** in the `cluster` crate — the same
//!   graphs executed in virtual time on modeled clusters (used for the
//!   paper's multi-node experiments).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod engine;
pub mod fault;
pub mod filter;
pub mod graph;
pub mod metrics;
pub mod pool;
pub mod schedule;
pub mod stats;
pub mod transport;

pub use buffer::DataBuffer;
pub use engine::{run_graph, EngineConfig, FilterFactory, RunFailure, RunOutcome, CANCEL_MESSAGE};
pub use fault::{FaultKind, FaultPlan, FaultSite, FaultSpec};
pub use filter::{Filter, FilterContext, FilterError, FilterErrorKind};
pub use graph::{FilterDecl, GraphSpec, StreamDecl};
pub use metrics::{
    ConnectionReport, CopyReport, FilterShape, IoReport, PhaseReport, RunPhases, RunReport,
    StoreReport, StreamMeter, StreamStats,
};
pub use pool::{BufferPool, PoolReport};
pub use schedule::SchedulePolicy;
pub use stats::{FilterCopyStats, RunStats};
pub use transport::{
    free_loopback_addrs, reserve_loopback_listeners, run_node, NodeConfig, PayloadCodec,
    TransportFault, TransportFaultKind, WireConfig, WireError,
};
