//! The threaded execution engine.
//!
//! Every filter copy runs on its own OS thread; streams are bounded
//! crossbeam channels, so a full downstream queue blocks the producer —
//! the pipelining/backpressure behaviour of DataCutter's stream layer.
//!
//! **End-of-stream** is signalled by sender destruction: when every copy of
//! every producer on a stream has finished, the channel disconnects and the
//! consumer observes end-of-input — no explicit EOS tokens are needed, and
//! the mechanism composes correctly with shared (demand-driven) queues.
//!
//! **Failure containment:** a filter returning an error — or *panicking*;
//! every callback runs under [`std::panic::catch_unwind`] — exits its thread
//! and drops its endpoints; upstream producers then fail their next `emit`
//! ([`FilterErrorKind::DownstreamClosed`]) and unwind, downstream consumers
//! see early disconnection and finish. The run drains without deadlock,
//! every spawned copy reports its [`FilterCopyStats`] (panicked copies
//! included), `run_graph` joins **every** worker thread before returning,
//! and the reported root cause is selected by error *kind*: an originating
//! `App`/`Io`/`Panic` failure always wins over the `DownstreamClosed`
//! cascade symptoms it triggers, and the error names the failing filter
//! copy.

use crate::filter::{Filter, FilterContext, FilterError, FilterErrorKind, Msg, OutPort};
use crate::graph::GraphSpec;
use crate::metrics::{RunPhases, StreamMeter, StreamStats};
use crate::stats::{FilterCopyStats, RunStats};
use crossbeam::channel::{bounded, Receiver, Select, Sender};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A per-filter constructor: called once per copy with the copy index.
///
/// Spin-up is a fallible phase: a factory that cannot build its filter
/// (missing dataset, bad configuration) returns a typed [`FilterError`]
/// instead of panicking, and `run_graph` converts it into a [`RunFailure`]
/// stamped with the filter name and copy index. A factory that panics
/// anyway is contained by a `catch_unwind` backstop and reported as a
/// `Panic`-kind error; either way the copies already spawned drain and are
/// joined before `run_graph` returns.
pub type FilterFactory = Box<dyn FnMut(usize) -> Result<Box<dyn Filter>, FilterError>>;

/// Engine options.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Prefix for spawned thread names (diagnostics).
    pub thread_name_prefix: String,
    /// Cooperative cancellation flag. When set and later raised (by e.g. a
    /// service job manager), every copy aborts at its next callback
    /// boundary with an `App`-kind "run cancelled" error; blocked receives
    /// poll the flag, and long-running source filters should consult
    /// [`FilterContext::check_cancelled`] between emissions. The run then
    /// drains through the normal failure path: sinks observe
    /// [`FilterContext::run_failed`] and withhold output commitment.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            thread_name_prefix: "dc".to_string(),
            cancel: None,
        }
    }
}

/// Message used for every cancellation-induced error; the service layer
/// distinguishes "cancelled" from "failed" by having requested the cancel,
/// never by matching this string.
pub const CANCEL_MESSAGE: &str = "run cancelled";

/// The result of a successful run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-copy statistics.
    pub stats: RunStats,
    /// Per-stream delivery aggregates and queue-depth high-water marks.
    pub streams: Vec<StreamStats>,
    /// Spin-up / steady / drain phase split of the run.
    pub phases: RunPhases,
    /// Per-peer transport counters, one per connection; empty for
    /// single-process runs (filled by [`crate::transport::run_node`]).
    pub transport: Vec<crate::metrics::ConnectionReport>,
}

/// A failed run: the selected root cause, the cascade errors it triggered,
/// and the statistics of every copy that reported before shutdown — on a
/// fully spawned graph that is *every* copy, panicked ones included.
#[derive(Debug, Clone)]
pub struct RunFailure {
    /// The root-cause error (kind-selected: originating failures beat
    /// `DownstreamClosed` cascade symptoms).
    pub error: FilterError,
    /// Other errors observed during the drain, in arrival order.
    pub secondary: Vec<FilterError>,
    /// Per-copy statistics collected up to the failure (empty when the run
    /// failed before any thread was spawned, e.g. graph validation).
    pub stats: RunStats,
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.error)?;
        if !self.secondary.is_empty() {
            write!(f, " (+{} secondary)", self.secondary.len())?;
        }
        Ok(())
    }
}

impl std::error::Error for RunFailure {}

impl From<FilterError> for RunFailure {
    fn from(error: FilterError) -> Self {
        Self {
            error,
            secondary: Vec::new(),
            stats: RunStats::default(),
        }
    }
}

/// Which part of the graph runs in this process, and how cross-process
/// streams are bridged. [`run_graph`] uses [`Partition::whole`] — every
/// copy local, nothing bridged — so the single-process path is unchanged;
/// the transport layer builds node-scoped partitions for distributed runs.
pub(crate) struct Partition {
    /// Node id this process executes, or `None` for a whole-graph run (the
    /// threaded engine's classic mode, which ignores placements).
    pub node: Option<usize>,
    /// Senders bridging to consumer copies hosted on other nodes, keyed by
    /// `(stream index, Some(global copy) | None = shared demand-driven
    /// queue)`. They are installed at the remote copies' positions in each
    /// local producer's `OutPort`, so routing, backpressure and
    /// `blocked_send` accounting work transparently.
    pub uplinks: HashMap<(usize, Option<usize>), Sender<Msg>>,
    /// Called exactly once, after channel creation and before any copy can
    /// observe a disconnect, with one injector per stream (`Some` only for
    /// streams that have local consumer queues and at least one remote
    /// producer copy). TCP readers hold these clones and drop them per
    /// route as end-of-stream frames arrive.
    pub handoff: Option<Box<dyn FnOnce(Vec<Option<StreamInjector>>) + Send>>,
    /// Run-level failure flag shared with the transport threads: readers
    /// raise it before dropping injectors, writers consult it to choose
    /// between EOS and error propagation at channel disconnect.
    pub failed: Arc<AtomicBool>,
}

impl Partition {
    /// The whole graph in this process; placements ignored.
    pub fn whole() -> Self {
        Self {
            node: None,
            uplinks: HashMap::new(),
            handoff: None,
            failed: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Whether `copy` of `fdecl` executes in this process.
    pub fn is_local(&self, fdecl: &crate::graph::FilterDecl, copy: usize) -> bool {
        match self.node {
            None => true,
            Some(n) => fdecl.placement.get(copy).copied() == Some(n),
        }
    }
}

/// Handles a TCP reader needs to feed remotely produced buffers into this
/// process's consumer queues for one stream.
pub(crate) struct StreamInjector {
    /// Consumer-side input port the stream maps to.
    pub port: usize,
    /// Clones of the local consumer-queue senders: `Some(global copy)` for
    /// private queues, `None` for the shared demand-driven queue.
    pub senders: Vec<(Option<usize>, Sender<Msg>)>,
    /// The stream's meter — remote deliveries are metered on the consumer
    /// node like local ones.
    pub meter: Arc<StreamMeter>,
}

/// Executes `spec` with the given filter factories and blocks until every
/// filter has finished **and every worker thread has been joined** — no
/// thread outlives this call, so a failed run cannot keep writing output
/// behind the caller's back.
///
/// # Errors
/// Graph validation failures, a missing factory, or the kind-selected root
/// cause of the first failing filter copy (see [`RunFailure`]).
pub fn run_graph(
    spec: &GraphSpec,
    factories: &mut HashMap<String, FilterFactory>,
    cfg: &EngineConfig,
) -> Result<RunOutcome, RunFailure> {
    run_graph_partition(spec, factories, cfg, Partition::whole())
}

/// The partition-parameterized core of [`run_graph`]: channels are created
/// only for locally hosted consumer copies, cross-node positions in each
/// producer's sender vector are filled with transport uplinks, and factories
/// are called with **global** copy indices so node mapping, output file
/// naming and routing are identical to the single-process run.
pub(crate) fn run_graph_partition(
    spec: &GraphSpec,
    factories: &mut HashMap<String, FilterFactory>,
    cfg: &EngineConfig,
    partition: Partition,
) -> Result<RunOutcome, RunFailure> {
    spec.validate()
        .map_err(|e| FilterError::engine(format!("invalid graph: {e}")))?;
    for f in &spec.filters {
        if !factories.contains_key(&f.name) {
            return Err(FilterError::engine(format!("no factory for filter {:?}", f.name)).into());
        }
    }

    // Create the queue(s) of every stream: one per *locally hosted*
    // consumer copy. Remote consumer positions get the transport uplink at
    // the same index, so `emit`'s routing never knows the difference.
    struct StreamChans {
        /// Full routing vector indexed like the consumer's global copies
        /// (single entry for shared queues); empty when no producer copy is
        /// local, since no local `OutPort` will reference it.
        senders: Vec<Sender<Msg>>,
        /// The locally created queue senders, for the injector handoff.
        local_txs: Vec<(Option<usize>, Sender<Msg>)>,
        /// Per global consumer copy; `None` for copies hosted elsewhere.
        receivers: Vec<Option<Receiver<Msg>>>,
    }
    let mut chans: Vec<StreamChans> = Vec::with_capacity(spec.streams.len());
    let meters: Vec<Arc<StreamMeter>> = (0..spec.streams.len())
        .map(|_| Arc::new(StreamMeter::default()))
        .collect();
    for (si, s) in spec.streams.iter().enumerate() {
        let cdecl = spec.filter_decl(&s.to).expect("validated");
        let pdecl = spec.filter_decl(&s.from).expect("validated");
        let has_local_producer = (0..pdecl.copies).any(|c| partition.is_local(pdecl, c));
        let uplink = |dest: Option<usize>| -> Result<Sender<Msg>, FilterError> {
            partition.uplinks.get(&(si, dest)).cloned().ok_or_else(|| {
                FilterError::engine(format!(
                    "stream {:?}: no transport uplink for remote consumer {dest:?}",
                    s.name
                ))
            })
        };
        if s.policy.uses_private_queues() {
            let mut receivers: Vec<Option<Receiver<Msg>>> = vec![None; cdecl.copies];
            let mut local_txs = Vec::new();
            for copy in 0..cdecl.copies {
                if partition.is_local(cdecl, copy) {
                    let (tx, rx) = bounded(s.capacity);
                    receivers[copy] = Some(rx);
                    local_txs.push((Some(copy), tx));
                }
            }
            let senders = if has_local_producer {
                (0..cdecl.copies)
                    .map(|copy| match &receivers[copy] {
                        Some(_) => Ok(local_txs
                            .iter()
                            .find(|(k, _)| *k == Some(copy))
                            .expect("local queue was just created")
                            .1
                            .clone()),
                        None => uplink(Some(copy)),
                    })
                    .collect::<Result<Vec<_>, _>>()?
            } else {
                Vec::new()
            };
            chans.push(StreamChans {
                senders,
                local_txs,
                receivers,
            });
        } else {
            // One shared queue all consumer copies pull from: demand-driven.
            // In a distributed run the consumer's copies live on a single
            // node (the transport validates this), so the queue is either
            // entirely local or entirely behind one uplink.
            let local_consumers = (0..cdecl.copies)
                .filter(|&c| partition.is_local(cdecl, c))
                .count();
            if local_consumers == cdecl.copies {
                let (tx, rx) = bounded(s.capacity);
                let senders = if has_local_producer {
                    vec![tx.clone()]
                } else {
                    Vec::new()
                };
                chans.push(StreamChans {
                    senders,
                    local_txs: vec![(None, tx)],
                    receivers: vec![Some(rx); cdecl.copies],
                });
            } else if local_consumers == 0 {
                let senders = if has_local_producer {
                    vec![uplink(None)?]
                } else {
                    Vec::new()
                };
                chans.push(StreamChans {
                    senders,
                    local_txs: Vec::new(),
                    receivers: vec![None; cdecl.copies],
                });
            } else {
                return Err(FilterError::engine(format!(
                    "demand-driven stream {:?} has consumer copies on multiple nodes",
                    s.name
                ))
                .into());
            }
        }
    }

    // Hand the injectors to the transport readers *before* any copy runs:
    // readers must hold their queue clones before local consumers could
    // mistake a missing remote producer for end-of-stream.
    let mut partition = partition;
    if let Some(handoff) = partition.handoff.take() {
        let injectors: Vec<Option<StreamInjector>> = spec
            .streams
            .iter()
            .enumerate()
            .map(|(si, s)| {
                let pdecl = spec.filter_decl(&s.from).expect("validated");
                let has_remote_producer = (0..pdecl.copies).any(|c| !partition.is_local(pdecl, c));
                if chans[si].local_txs.is_empty() || !has_remote_producer {
                    return None;
                }
                let port = spec
                    .inputs_of(&s.to)
                    .iter()
                    .position(|&i| i == si)
                    .expect("stream is an input of its consumer");
                Some(StreamInjector {
                    port,
                    senders: chans[si].local_txs.clone(),
                    meter: meters[si].clone(),
                })
            })
            .collect();
        handoff(injectors);
    }
    let node = partition.node;
    let failed = Arc::clone(&partition.failed);
    // The uplink originals drop here; producers' OutPorts hold the clones
    // and the transport writers hold the receiving ends.
    drop(partition);

    let start = Instant::now();
    let is_local = |fdecl: &crate::graph::FilterDecl, copy: usize| match node {
        None => true,
        Some(n) => fdecl.placement.get(copy).copied() == Some(n),
    };
    // Sized to the *local* copy count so every worker's single completion
    // send is non-blocking even if the drain loop exits early — a graph
    // with more than N copies must never stall against a fixed-size channel.
    let total_copies: usize = spec
        .filters
        .iter()
        .map(|f| (0..f.copies).filter(|&c| is_local(f, c)).count())
        .sum();
    let (done_tx, done_rx) = bounded::<(FilterCopyStats, Option<FilterError>)>(total_copies.max(1));
    // Run-level failure flag: raised by the first failing copy before it
    // releases its channels, so sinks can refuse to commit output on runs
    // that are already doomed (see `FilterContext::run_failed`).
    let mut spawned = 0usize;
    let mut handles = Vec::new();
    let mut spawn_error: Option<FilterError> = None;

    'spawn: for fdecl in &spec.filters {
        let input_streams = spec.inputs_of(&fdecl.name);
        let output_streams = spec.outputs_of(&fdecl.name);
        let factory = factories.get_mut(&fdecl.name).expect("checked above");
        for copy in (0..fdecl.copies).filter(|&c| is_local(fdecl, c)) {
            let outputs: Vec<OutPort> = output_streams
                .iter()
                .map(|&si| {
                    let s = &spec.streams[si];
                    let dest_port = spec
                        .inputs_of(&s.to)
                        .iter()
                        .position(|&i| i == si)
                        .expect("stream is an input of its consumer");
                    OutPort {
                        policy: s.policy,
                        dest_filter: s.to.clone(),
                        dest_port,
                        senders: chans[si].senders.clone(),
                        consumer_copies: spec.filter_decl(&s.to).expect("validated").copies,
                        seq: 0,
                        meter: meters[si].clone(),
                    }
                })
                .collect();
            let receivers: Vec<Receiver<Msg>> = input_streams
                .iter()
                .map(|&si| {
                    chans[si].receivers[copy]
                        .clone()
                        .expect("local consumer copy has a local queue")
                })
                .collect();
            let ctx = FilterContext {
                filter_name: fdecl.name.clone(),
                copy_index: copy,
                num_copies: fdecl.copies,
                outputs,
                buffers_out: 0,
                bytes_out: 0,
                blocked_send: Duration::ZERO,
                failed: failed.clone(),
                cancel: cfg.cancel.clone(),
            };
            // Spin-up is fallible: a factory error or panic aborts further
            // spawning with a typed, origin-stamped root cause, while the
            // copies already running drain and are joined below.
            let filter = match catch_unwind(AssertUnwindSafe(|| factory(copy))) {
                Ok(Ok(f)) => f,
                Ok(Err(e)) => {
                    spawn_error = Some(e.with_origin(&fdecl.name, copy));
                    break 'spawn;
                }
                Err(payload) => {
                    spawn_error = Some(
                        FilterError::panic(format!(
                            "panicked in factory: {}",
                            panic_payload_message(payload)
                        ))
                        .with_origin(&fdecl.name, copy),
                    );
                    break 'spawn;
                }
            };
            let tx = done_tx.clone();
            let name = format!("{}-{}-{}", cfg.thread_name_prefix, fdecl.name, copy);
            match std::thread::Builder::new().name(name).spawn(move || {
                let result = run_copy(filter, ctx, receivers);
                let _ = tx.send(result);
            }) {
                Ok(handle) => {
                    handles.push(handle);
                    spawned += 1;
                }
                Err(e) => {
                    // Stop spawning; the copies already running must still
                    // drain and be joined before we report the failure.
                    spawn_error = Some(FilterError::engine(format!("thread spawn failed: {e}")));
                    break 'spawn;
                }
            }
        }
    }
    if spawn_error.is_some() {
        // Mark the run failed before releasing the unspawned filters'
        // channel originals: consumers must not mistake the resulting
        // disconnection for a clean end-of-stream.
        failed.store(true, Ordering::SeqCst);
    }
    // Drop the channel originals so disconnection tracking is exact.
    drop(chans);
    drop(done_tx);
    // Spin-up ends once every copy is spawned (or spawning aborted) and the
    // channel originals are released; the run is now in steady state.
    let spinup_done = Instant::now();
    let mut first_done: Option<Instant> = None;

    let mut per_copy = Vec::with_capacity(spawned);
    let mut root_error: Option<FilterError> = None;
    let mut cascade_error: Option<FilterError> = None;
    let mut secondary: Vec<FilterError> = Vec::new();
    let mut engine_error: Option<FilterError> = None;
    for _ in 0..spawned {
        match done_rx.recv() {
            Ok((stats, err)) => {
                first_done.get_or_insert_with(Instant::now);
                per_copy.push(stats);
                if let Some(e) = err {
                    // Cascade symptoms (a producer noticing its consumer
                    // died) can never shadow — or be faked by — an
                    // originating failure: selection is by kind, not by
                    // message content.
                    let slot = if e.is_cascade() {
                        &mut cascade_error
                    } else {
                        &mut root_error
                    };
                    if slot.is_some() {
                        secondary.push(e);
                    } else {
                        *slot = Some(e);
                    }
                }
            }
            Err(_) => {
                first_done.get_or_insert_with(Instant::now);
                // Every worker sends exactly once even when its filter
                // panics; losing the channel means a thread died outside
                // containment (e.g. a panic in a payload Drop).
                engine_error.get_or_insert_with(|| {
                    FilterError::engine(
                        "worker exited without reporting (died outside containment)",
                    )
                });
                break;
            }
        }
    }
    // Join every spawned thread *before* returning, on success and failure
    // alike: once run_graph returns, no filter code is still running.
    for h in handles {
        let _ = h.join();
    }
    // Phase boundaries are captured before the final `start.elapsed()` so
    // `spinup + steady + drain <= wall` holds exactly in Duration space.
    let finished = Instant::now();
    let first_done = first_done.unwrap_or(spinup_done);
    let phases = RunPhases {
        spinup: spinup_done.duration_since(start),
        steady: first_done.duration_since(spinup_done),
        drain: finished.duration_since(first_done),
    };
    per_copy.sort_by(|a, b| (&a.filter, a.copy).cmp(&(&b.filter, b.copy)));
    let stats = RunStats {
        per_copy,
        wall: start.elapsed(),
    };
    // Root-cause precedence: a typed spin-up failure or an originating
    // in-flight failure (App/Io/Panic) beats an engine failure, which beats
    // the DownstreamClosed cascade symptoms all of them trigger. Whatever is
    // not selected joins the secondary list.
    let (spawn_origin, spawn_other) = match spawn_error {
        Some(e) if !e.is_cascade() && e.kind() != FilterErrorKind::Engine => (Some(e), None),
        other => (None, other),
    };
    let mut candidates: Vec<FilterError> = [
        spawn_origin,
        root_error,
        spawn_other,
        engine_error,
        cascade_error,
    ]
    .into_iter()
    .flatten()
    .collect();
    if candidates.is_empty() {
        let streams = spec
            .streams
            .iter()
            .zip(&meters)
            .map(|(s, m)| {
                let queues = if s.policy.uses_private_queues() {
                    spec.filter_decl(&s.to).expect("validated").copies
                } else {
                    1
                };
                StreamStats {
                    name: s.name.clone(),
                    from: s.from.clone(),
                    to: s.to.clone(),
                    policy: s.policy,
                    capacity: s.capacity,
                    queues,
                    buffers: m.buffers(),
                    bytes: m.bytes(),
                    depth_high_water: m.depth_high_water(),
                }
            })
            .collect();
        return Ok(RunOutcome {
            stats,
            streams,
            phases,
            transport: Vec::new(),
        });
    }
    let error = candidates.remove(0);
    candidates.extend(secondary);
    Err(RunFailure {
        error,
        secondary: candidates,
        stats,
    })
}

/// Extracts a human-readable message from a panic payload.
fn panic_payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one filter callback with panic containment: a panic becomes a
/// [`FilterErrorKind::Panic`] error carrying the payload message.
fn contained(site: &str, f: impl FnOnce() -> Result<(), FilterError>) -> Result<(), FilterError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => Err(FilterError::panic(format!(
            "panicked in {site}: {}",
            panic_payload_message(payload)
        ))),
    }
}

/// How long a cancellable copy waits for input before re-checking the
/// cancel flag; bounds cancellation latency for copies parked on empty
/// input queues.
const CANCEL_POLL: Duration = Duration::from_millis(25);

/// Drives one filter copy to completion on the current thread.
///
/// Every callback runs under panic containment; after a failure (error or
/// panic) the filter is not called again, but the stats accumulated so far
/// are still reported and the thread exits normally, so the engine's drain
/// and join logic never depends on filters being well-behaved.
fn run_copy(
    mut filter: Box<dyn Filter>,
    mut ctx: FilterContext,
    receivers: Vec<Receiver<Msg>>,
) -> (FilterCopyStats, Option<FilterError>) {
    let t0 = Instant::now();
    let mut busy = Duration::ZERO;
    let mut blocked_recv = Duration::ZERO;
    let mut buffers_in = 0u64;
    let mut bytes_in = 0u64;
    let mut error: Option<FilterError> = None;

    // start() — a copy of an already-cancelled run never calls into the
    // filter at all.
    if ctx.cancelled() {
        error = Some(FilterError::msg(CANCEL_MESSAGE));
    } else if let Some(e) = {
        let t = Instant::now();
        let r = contained("start", || filter.start(&mut ctx));
        busy += t.elapsed();
        r.err()
    } {
        error = Some(e);
    }

    // Receive loop over all live input channels. After a failure the loop
    // stops consuming; dropping the receivers below disconnects upstream.
    let mut alive = receivers;
    while error.is_none() && !alive.is_empty() {
        if ctx.cancelled() {
            error = Some(FilterError::msg(CANCEL_MESSAGE));
            break;
        }
        let msg = {
            let mut sel = Select::new();
            for r in &alive {
                sel.recv(r);
            }
            // Only the blocking wait for a ready stream counts as
            // blocked-recv; the non-blocking completion below does not.
            // Cancellable runs wait in short slices so a copy parked on
            // empty inputs still notices the flag promptly.
            let t = Instant::now();
            let op = if ctx.cancel.is_none() {
                Some(sel.select())
            } else {
                loop {
                    match sel.select_timeout(CANCEL_POLL) {
                        Ok(op) => break Some(op),
                        Err(_) if ctx.cancelled() => break None,
                        Err(_) => continue,
                    }
                }
            };
            blocked_recv += t.elapsed();
            match op {
                None => {
                    error = Some(FilterError::msg(CANCEL_MESSAGE));
                    None
                }
                Some(op) => {
                    let idx = op.index();
                    match op.recv(&alive[idx]) {
                        Ok(m) => Some(m),
                        Err(_) => {
                            alive.swap_remove(idx);
                            None
                        }
                    }
                }
            }
        };
        if let Some(m) = msg {
            buffers_in += 1;
            bytes_in += m.buf.size_bytes() as u64;
            let t = Instant::now();
            let r = contained("process", || filter.process(m.port, m.buf, &mut ctx));
            busy += t.elapsed();
            if let Err(e) = r {
                error = Some(e);
            }
        }
    }

    // finish() — skipped on cancelled runs: flushing partial output on a
    // run whose result will be discarded is wasted (and possibly committed)
    // work.
    if error.is_none() {
        if ctx.cancelled() {
            error = Some(FilterError::msg(CANCEL_MESSAGE));
        } else {
            let t = Instant::now();
            let r = contained("finish", || filter.finish(&mut ctx));
            busy += t.elapsed();
            if let Err(e) = r {
                error = Some(e);
            }
        }
    }

    // `emit` runs inside callbacks, so its blocked-send time is nested in
    // the callback timing; subtracting it makes `busy` pure compute and
    // `busy + blocked_send + blocked_recv <= wall` exact.
    let blocked_send = ctx.blocked_send;
    let busy = busy.saturating_sub(blocked_send);
    let stats = FilterCopyStats {
        filter: ctx.filter_name.clone(),
        copy: ctx.copy_index,
        buffers_in,
        buffers_out: ctx.buffers_out,
        bytes_in,
        bytes_out: ctx.bytes_out,
        busy,
        blocked_send,
        blocked_recv,
        wall: t0.elapsed(),
    };
    let error = error.map(|e| e.with_origin(&ctx.filter_name, ctx.copy_index));
    if error.is_some() {
        // Raise the run-level flag BEFORE the channels drop: any filter
        // that later observes end-of-stream is guaranteed to see it.
        ctx.failed.store(true, Ordering::SeqCst);
    }
    // Dropping ctx here releases the senders → downstream EOS. A panicked
    // filter may hold broken invariants, so its destructor is contained too.
    drop(ctx);
    let _ = catch_unwind(AssertUnwindSafe(move || drop(filter)));
    (stats, error)
}
