//! The threaded execution engine.
//!
//! Every filter copy runs on its own OS thread; streams are bounded
//! crossbeam channels, so a full downstream queue blocks the producer —
//! the pipelining/backpressure behaviour of DataCutter's stream layer.
//!
//! **End-of-stream** is signalled by sender destruction: when every copy of
//! every producer on a stream has finished, the channel disconnects and the
//! consumer observes end-of-input — no explicit EOS tokens are needed, and
//! the mechanism composes correctly with shared (demand-driven) queues.
//!
//! **Failure containment:** a filter returning an error exits its thread and
//! drops its endpoints; upstream producers then fail their next `emit`
//! ("downstream filter terminated") and unwind, downstream consumers see
//! early disconnection and finish — the run drains without deadlock and
//! `run_graph` reports the root error.

use crate::filter::{Filter, FilterContext, FilterError, Msg, OutPort};
use crate::graph::GraphSpec;
use crate::stats::{FilterCopyStats, RunStats};
use crossbeam::channel::{bounded, Receiver, Select, Sender};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A per-filter constructor: called once per copy with the copy index.
pub type FilterFactory = Box<dyn FnMut(usize) -> Box<dyn Filter>>;

/// Engine options.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Prefix for spawned thread names (diagnostics).
    pub thread_name_prefix: String,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            thread_name_prefix: "dc".to_string(),
        }
    }
}

/// The result of a successful run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-copy statistics.
    pub stats: RunStats,
}

/// Executes `spec` with the given filter factories and blocks until every
/// filter has finished.
///
/// # Errors
/// Graph validation failures, a missing factory, or the first error returned
/// by any filter callback.
pub fn run_graph(
    spec: &GraphSpec,
    factories: &mut HashMap<String, FilterFactory>,
    cfg: &EngineConfig,
) -> Result<RunOutcome, FilterError> {
    spec.validate()
        .map_err(|e| FilterError::msg(format!("invalid graph: {e}")))?;
    for f in &spec.filters {
        if !factories.contains_key(&f.name) {
            return Err(FilterError::msg(format!(
                "no factory for filter {:?}",
                f.name
            )));
        }
    }

    // Create the channel(s) of every stream.
    struct StreamChans {
        senders: Vec<Sender<Msg>>,
        receivers: Vec<Receiver<Msg>>, // one per consumer copy (shared: clones)
    }
    let mut chans: Vec<StreamChans> = Vec::with_capacity(spec.streams.len());
    for s in &spec.streams {
        let consumer_copies = spec.filter_decl(&s.to).expect("validated").copies;
        if s.policy.uses_private_queues() {
            let mut senders = Vec::with_capacity(consumer_copies);
            let mut receivers = Vec::with_capacity(consumer_copies);
            for _ in 0..consumer_copies {
                let (tx, rx) = bounded(s.capacity);
                senders.push(tx);
                receivers.push(rx);
            }
            chans.push(StreamChans { senders, receivers });
        } else {
            // One shared queue all consumer copies pull from: demand-driven.
            let (tx, rx) = bounded(s.capacity);
            chans.push(StreamChans {
                senders: vec![tx],
                receivers: vec![rx; consumer_copies],
            });
        }
    }

    let start = Instant::now();
    let (done_tx, done_rx) = bounded::<(FilterCopyStats, Option<FilterError>)>(1024);
    let mut spawned = 0usize;
    let mut handles = Vec::new();

    for fdecl in &spec.filters {
        let input_streams = spec.inputs_of(&fdecl.name);
        let output_streams = spec.outputs_of(&fdecl.name);
        let factory = factories.get_mut(&fdecl.name).expect("checked above");
        for copy in 0..fdecl.copies {
            let outputs: Vec<OutPort> = output_streams
                .iter()
                .map(|&si| {
                    let s = &spec.streams[si];
                    let dest_port = spec
                        .inputs_of(&s.to)
                        .iter()
                        .position(|&i| i == si)
                        .expect("stream is an input of its consumer");
                    OutPort {
                        policy: s.policy,
                        dest_port,
                        senders: chans[si].senders.clone(),
                        consumer_copies: spec.filter_decl(&s.to).expect("validated").copies,
                        seq: 0,
                    }
                })
                .collect();
            let receivers: Vec<Receiver<Msg>> = input_streams
                .iter()
                .map(|&si| chans[si].receivers[copy].clone())
                .collect();
            let ctx = FilterContext {
                filter_name: fdecl.name.clone(),
                copy_index: copy,
                num_copies: fdecl.copies,
                outputs,
                buffers_out: 0,
                bytes_out: 0,
            };
            let filter = factory(copy);
            let tx = done_tx.clone();
            let name = format!("{}-{}-{}", cfg.thread_name_prefix, fdecl.name, copy);
            let handle = std::thread::Builder::new()
                .name(name)
                .spawn(move || {
                    let result = run_copy(filter, ctx, receivers);
                    let _ = tx.send(result);
                })
                .map_err(|e| FilterError::msg(format!("thread spawn failed: {e}")))?;
            handles.push(handle);
            spawned += 1;
        }
    }
    // Drop the channel originals so disconnection tracking is exact.
    drop(chans);
    drop(done_tx);

    let mut per_copy = Vec::with_capacity(spawned);
    let mut root_error: Option<FilterError> = None;
    let mut secondary_error: Option<FilterError> = None;
    for _ in 0..spawned {
        let (stats, err) = done_rx
            .recv()
            .map_err(|_| FilterError::msg("engine: worker channel closed early"))?;
        per_copy.push(stats);
        if let Some(e) = err {
            // "downstream terminated" errors are cascade symptoms; prefer
            // the originating failure as the reported root cause.
            if e.0.contains("downstream filter terminated") {
                secondary_error.get_or_insert(e);
            } else {
                root_error.get_or_insert(e);
            }
        }
    }
    for h in handles {
        let _ = h.join();
    }
    if let Some(e) = root_error.or(secondary_error) {
        return Err(e);
    }
    per_copy.sort_by(|a, b| (&a.filter, a.copy).cmp(&(&b.filter, b.copy)));
    Ok(RunOutcome {
        stats: RunStats {
            per_copy,
            wall: start.elapsed(),
        },
    })
}

/// Drives one filter copy to completion on the current thread.
fn run_copy(
    mut filter: Box<dyn Filter>,
    mut ctx: FilterContext,
    receivers: Vec<Receiver<Msg>>,
) -> (FilterCopyStats, Option<FilterError>) {
    let t0 = Instant::now();
    let mut busy = Duration::ZERO;
    let mut buffers_in = 0u64;
    let mut bytes_in = 0u64;
    let mut error: Option<FilterError> = None;

    // start()
    if let Some(e) = {
        let t = Instant::now();
        let r = filter.start(&mut ctx);
        busy += t.elapsed();
        r.err()
    } {
        error = Some(e);
    }

    // Receive loop over all live input channels.
    let mut alive = receivers;
    while error.is_none() && !alive.is_empty() {
        let msg = {
            let mut sel = Select::new();
            for r in &alive {
                sel.recv(r);
            }
            let op = sel.select();
            let idx = op.index();
            match op.recv(&alive[idx]) {
                Ok(m) => Some(m),
                Err(_) => {
                    alive.swap_remove(idx);
                    None
                }
            }
        };
        if let Some(m) = msg {
            buffers_in += 1;
            bytes_in += m.buf.size_bytes() as u64;
            let t = Instant::now();
            let r = filter.process(m.port, m.buf, &mut ctx);
            busy += t.elapsed();
            if let Err(e) = r {
                error = Some(e);
            }
        }
    }

    // finish()
    if error.is_none() {
        let t = Instant::now();
        let r = filter.finish(&mut ctx);
        busy += t.elapsed();
        if let Err(e) = r {
            error = Some(e);
        }
    }

    let stats = FilterCopyStats {
        filter: ctx.filter_name.clone(),
        copy: ctx.copy_index,
        buffers_in,
        buffers_out: ctx.buffers_out,
        bytes_in,
        bytes_out: ctx.bytes_out,
        busy,
        wall: t0.elapsed(),
    };
    // Dropping ctx here releases the senders → downstream EOS.
    drop(ctx);
    (stats, error)
}
