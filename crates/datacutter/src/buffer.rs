//! Data buffers — the unit of exchange between filters.
//!
//! Streams deliver data "in user-defined data chunks (data buffers)". A
//! buffer carries an opaque, shareable payload plus the metadata the runtime
//! needs: a routing **tag** (used by explicit tag-modulo streams) and the
//! buffer's **wire size** (used for byte accounting and by the cluster
//! simulator's communication model).
//!
//! Payloads are reference-counted (`Arc`), so handing a buffer from a
//! producer to a co-located consumer is literally "copying the pointer to
//! the data buffer" as in DataCutter; broadcast streams clone the `Arc`,
//! never the data.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// A typed, shareable data buffer flowing along a stream.
#[derive(Clone)]
pub struct DataBuffer {
    payload: Arc<dyn Any + Send + Sync>,
    size_bytes: usize,
    tag: u64,
}

impl DataBuffer {
    /// Wraps a payload with an explicit wire size and routing tag.
    pub fn new<T: Any + Send + Sync>(payload: T, size_bytes: usize, tag: u64) -> Self {
        Self {
            payload: Arc::new(payload),
            size_bytes,
            tag,
        }
    }

    /// Wraps an already-shared payload (avoids a second allocation when the
    /// producer keeps a reference).
    pub fn from_arc<T: Any + Send + Sync>(payload: Arc<T>, size_bytes: usize, tag: u64) -> Self {
        Self {
            payload,
            size_bytes,
            tag,
        }
    }

    /// Downcasts the payload to a concrete type.
    pub fn downcast<T: Any + Send + Sync>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }

    /// Downcasts or panics with a descriptive message — for filters that
    /// know their input type by construction. (The engine contains the
    /// panic, but prefer [`DataBuffer::payload`] in filter code: a typed
    /// `App`-kind error beats a contained panic in diagnostics.)
    pub fn expect<T: Any + Send + Sync>(&self) -> &T {
        self.downcast::<T>().unwrap_or_else(|| {
            panic!(
                "buffer payload is not a {} (tag {})",
                std::any::type_name::<T>(),
                self.tag
            )
        })
    }

    /// Downcasts the payload, returning a typed [`FilterError`] naming the
    /// expected type and the tag on mismatch — the non-panicking
    /// counterpart of [`DataBuffer::expect`] for filter callbacks.
    pub fn payload<T: Any + Send + Sync>(&self) -> Result<&T, crate::filter::FilterError> {
        self.downcast::<T>().ok_or_else(|| {
            crate::filter::FilterError::msg(format!(
                "buffer payload is not a {} (tag {})",
                std::any::type_name::<T>(),
                self.tag
            ))
        })
    }

    /// Consumes the buffer and returns the payload **by value**. When this
    /// buffer holds the last reference (the common case on tag-modulo and
    /// demand-driven streams, where exactly one copy receives each buffer),
    /// the payload moves out without copying — letting the consumer reuse
    /// its backing store instead of cloning it. Extra live references fall
    /// back to a clone; a type mismatch is a typed `App`-kind error naming
    /// the expected type and the tag.
    pub fn into_payload<T: Any + Send + Sync + Clone>(
        self,
    ) -> Result<T, crate::filter::FilterError> {
        let tag = self.tag;
        let arc: Arc<T> = self.payload.downcast::<T>().map_err(|_| {
            crate::filter::FilterError::msg(format!(
                "buffer payload is not a {} (tag {tag})",
                std::any::type_name::<T>(),
            ))
        })?;
        Ok(Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// The buffer's wire size in bytes: what would cross the network if the
    /// producer and consumer were on different nodes.
    pub const fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// The routing tag (application-defined; chunk ids in the Haralick
    /// pipeline).
    pub const fn tag(&self) -> u64 {
        self.tag
    }

    /// The [`TypeId`](std::any::TypeId) of the concrete payload type — how
    /// a wire codec looks up the encoder for an otherwise opaque buffer
    /// without trial downcasts.
    pub fn payload_type_id(&self) -> std::any::TypeId {
        (*self.payload).type_id()
    }

    /// Number of live references to the payload (diagnostics/tests).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.payload)
    }
}

impl fmt::Debug for DataBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DataBuffer")
            .field("size_bytes", &self.size_bytes)
            .field("tag", &self.tag)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downcast_roundtrip() {
        let b = DataBuffer::new(vec![1u16, 2, 3], 6, 42);
        assert_eq!(b.tag(), 42);
        assert_eq!(b.size_bytes(), 6);
        assert_eq!(b.downcast::<Vec<u16>>().unwrap(), &vec![1, 2, 3]);
        assert!(b.downcast::<String>().is_none());
    }

    #[test]
    fn clone_is_pointer_copy() {
        let b = DataBuffer::new([0u8; 64], 64, 0);
        let c = b.clone();
        assert_eq!(b.ref_count(), 2);
        assert_eq!(c.ref_count(), 2);
        // Both views see the same payload address (same Arc).
        assert!(std::ptr::eq(
            b.downcast::<[u8; 64]>().unwrap(),
            c.downcast::<[u8; 64]>().unwrap()
        ));
    }

    #[test]
    #[should_panic(expected = "buffer payload is not a")]
    fn expect_panics_on_wrong_type() {
        let b = DataBuffer::new(3u32, 4, 1);
        let _ = b.expect::<String>();
    }

    #[test]
    fn into_payload_moves_when_uniquely_held() {
        let b = DataBuffer::new(vec![1u16, 2, 3], 6, 5);
        let v: Vec<u16> = b.into_payload().unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        // Shared payloads fall back to a clone; both views stay valid.
        let shared = Arc::new(vec![9u16; 4]);
        let b = DataBuffer::from_arc(shared.clone(), 8, 6);
        let v: Vec<u16> = b.into_payload().unwrap();
        assert_eq!(v, *shared);
        // And mismatches are typed errors, not panics.
        let b = DataBuffer::new(3u32, 4, 7);
        let e = b.into_payload::<String>().unwrap_err();
        assert!(e.message().contains("tag 7"), "{e}");
    }

    #[test]
    fn payload_returns_typed_error_on_mismatch() {
        let b = DataBuffer::new(3u32, 4, 7);
        assert_eq!(*b.payload::<u32>().unwrap(), 3);
        let e = b.payload::<String>().unwrap_err();
        assert_eq!(e.kind(), crate::filter::FilterErrorKind::App);
        assert!(e.message().contains("tag 7"), "{e}");
    }
}
