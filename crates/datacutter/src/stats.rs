//! Per-filter runtime statistics.
//!
//! Paper Figure 9 plots "the processing time of each filter" — the busy time
//! each filter spends in its callbacks, as opposed to waiting on streams.
//! The threaded engine records, per filter copy: buffers and bytes in and
//! out, busy time, the blocked-send/blocked-recv wait split, and wall time
//! from thread start to exit. Busy time is reported *net* of blocked sends
//! (an `emit` that stalls on a full queue runs inside a callback), so
//! `busy + blocked_send + blocked_recv <= wall` holds per copy.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// Statistics of one filter copy over a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterCopyStats {
    /// Filter name.
    pub filter: String,
    /// Copy index.
    pub copy: usize,
    /// Buffers consumed.
    pub buffers_in: u64,
    /// Buffers emitted (a broadcast counts once).
    pub buffers_out: u64,
    /// Bytes consumed.
    pub bytes_in: u64,
    /// Bytes emitted.
    pub bytes_out: u64,
    /// Time spent computing inside `start`/`process`/`finish`, net of the
    /// blocked-send time accumulated by `emit` calls within them.
    pub busy: Duration,
    /// Time blocked in `emit` waiting for space in a full downstream queue.
    #[serde(default)]
    pub blocked_send: Duration,
    /// Time blocked waiting for input on the copy's streams.
    #[serde(default)]
    pub blocked_recv: Duration,
    /// Thread lifetime.
    pub wall: Duration,
}

impl FilterCopyStats {
    /// Total time the copy spent waiting on streams, either direction —
    /// the "waiting" half of paper Figure 9's busy-vs-wait split.
    pub fn blocked(&self) -> Duration {
        self.blocked_send + self.blocked_recv
    }
}

/// Aggregated statistics of a graph run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// One record per filter copy.
    pub per_copy: Vec<FilterCopyStats>,
    /// End-to-end wall time of the run.
    pub wall: Duration,
}

impl RunStats {
    /// All copies of `filter`.
    pub fn copies_of(&self, filter: &str) -> Vec<&FilterCopyStats> {
        self.per_copy
            .iter()
            .filter(|c| c.filter == filter)
            .collect()
    }

    /// Total busy time across the copies of `filter`.
    pub fn busy_of(&self, filter: &str) -> Duration {
        self.copies_of(filter).iter().map(|c| c.busy).sum()
    }

    /// Maximum per-copy busy time of `filter` — the paper's "processing
    /// time of each filter" under perfect balance.
    pub fn max_busy_of(&self, filter: &str) -> Duration {
        self.copies_of(filter)
            .iter()
            .map(|c| c.busy)
            .max()
            .unwrap_or_default()
    }

    /// Total buffers consumed by the copies of `filter`.
    pub fn buffers_into(&self, filter: &str) -> u64 {
        self.copies_of(filter).iter().map(|c| c.buffers_in).sum()
    }

    /// Total buffers emitted by the copies of `filter`.
    pub fn buffers_out_of(&self, filter: &str) -> u64 {
        self.copies_of(filter).iter().map(|c| c.buffers_out).sum()
    }

    /// Total bytes emitted by the copies of `filter` — the communication
    /// volume leaving that stage.
    pub fn bytes_out_of(&self, filter: &str) -> u64 {
        self.copies_of(filter).iter().map(|c| c.bytes_out).sum()
    }

    /// Buffer counts received per copy of `filter`, by copy index — used to
    /// verify round-robin fairness and observe demand-driven skew.
    pub fn per_copy_buffers_in(&self, filter: &str) -> BTreeMap<usize, u64> {
        self.copies_of(filter)
            .iter()
            .map(|c| (c.copy, c.buffers_in))
            .collect()
    }

    /// Total time the copies of `filter` spent blocked in `emit`.
    pub fn blocked_send_of(&self, filter: &str) -> Duration {
        self.copies_of(filter).iter().map(|c| c.blocked_send).sum()
    }

    /// Total time the copies of `filter` spent waiting for input.
    pub fn blocked_recv_of(&self, filter: &str) -> Duration {
        self.copies_of(filter).iter().map(|c| c.blocked_recv).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> RunStats {
        let copy = |filter: &str, copy: usize, bin: u64, bout: u64| FilterCopyStats {
            filter: filter.into(),
            copy,
            buffers_in: bin,
            buffers_out: bout,
            bytes_in: bin * 10,
            bytes_out: bout * 10,
            busy: Duration::from_millis(bin + bout),
            blocked_send: Duration::from_millis(bout),
            blocked_recv: Duration::from_millis(bin),
            wall: Duration::from_millis(100),
        };
        RunStats {
            per_copy: vec![copy("a", 0, 0, 10), copy("b", 0, 6, 3), copy("b", 1, 4, 2)],
            wall: Duration::from_millis(100),
        }
    }

    #[test]
    fn aggregation() {
        let s = stats();
        assert_eq!(s.buffers_into("b"), 10);
        assert_eq!(s.buffers_out_of("b"), 5);
        assert_eq!(s.bytes_out_of("a"), 100);
        assert_eq!(s.busy_of("b"), Duration::from_millis(15));
        assert_eq!(s.max_busy_of("b"), Duration::from_millis(9));
        assert_eq!(s.max_busy_of("ghost"), Duration::ZERO);
        assert_eq!(s.blocked_send_of("b"), Duration::from_millis(5));
        assert_eq!(s.blocked_recv_of("b"), Duration::from_millis(10));
        assert_eq!(s.per_copy[1].blocked(), Duration::from_millis(9));
    }

    #[test]
    fn per_copy_breakdown() {
        let s = stats();
        let m = s.per_copy_buffers_in("b");
        assert_eq!(m[&0], 6);
        assert_eq!(m[&1], 4);
    }
}
