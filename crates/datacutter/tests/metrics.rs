//! `RunReport` against live engine runs: the busy / blocked-send /
//! blocked-recv split of paper Figure 9 must hold its invariants on a
//! balanced graph, and must actually *localize* a bottleneck — a stalled
//! consumer shows up as producer blocked-send, a starved consumer as
//! blocked-recv.

use datacutter::{
    run_graph, DataBuffer, EngineConfig, Filter, FilterContext, FilterError, GraphSpec, RunReport,
    SchedulePolicy,
};
use std::collections::HashMap;
use std::time::Duration;

type Factories = HashMap<String, datacutter::engine::FilterFactory>;

struct Source {
    count: u64,
    delay: Duration,
}

impl Filter for Source {
    fn start(&mut self, ctx: &mut FilterContext) -> Result<(), FilterError> {
        for tag in 0..self.count {
            std::thread::sleep(self.delay);
            ctx.emit(0, DataBuffer::new(tag, 64, tag))?;
        }
        Ok(())
    }
    fn process(
        &mut self,
        _: usize,
        _: DataBuffer,
        _: &mut FilterContext,
    ) -> Result<(), FilterError> {
        unreachable!("source has no inputs")
    }
}

struct Sink {
    delay: Duration,
}

impl Filter for Sink {
    fn process(
        &mut self,
        _: usize,
        _: DataBuffer,
        _: &mut FilterContext,
    ) -> Result<(), FilterError> {
        std::thread::sleep(self.delay);
        Ok(())
    }
}

fn run_report(
    capacity: usize,
    src_delay: Duration,
    sink_delay: Duration,
) -> (GraphSpec, RunReport) {
    let spec = GraphSpec::new()
        .filter("src", 1)
        .filter("sink", 1)
        .stream_with_capacity("s", "src", "sink", SchedulePolicy::RoundRobin, capacity);
    let mut f: Factories = HashMap::new();
    f.insert(
        "src".to_string(),
        Box::new(move |_| {
            Ok(Box::new(Source {
                count: 30,
                delay: src_delay,
            }))
        }),
    );
    f.insert(
        "sink".to_string(),
        Box::new(move |_| Ok(Box::new(Sink { delay: sink_delay }))),
    );
    let outcome = run_graph(&spec, &mut f, &EngineConfig::default()).expect("run");
    let report = RunReport::new(&spec, &outcome);
    (spec, report)
}

#[test]
fn balanced_run_satisfies_report_invariants() {
    let (spec, report) = run_report(8, Duration::from_micros(200), Duration::from_micros(200));
    report.check().expect("invariants");
    assert_eq!(report.filters.len(), spec.filters.len());
    assert_eq!(report.streams.len(), 1);
    let s = &report.streams[0];
    assert_eq!(s.buffers, 30, "one delivery per emitted buffer");
    assert_eq!(s.bytes, 30 * 64);
    assert!(s.depth_high_water <= s.capacity);
    assert_eq!(report.per_copy.len(), 2);
}

#[test]
fn stalled_consumer_shows_producer_blocked_send() {
    // Fast producer, slow consumer, capacity-1 queue: nearly every emit
    // must wait for the sink to drain a slot.
    let (_, report) = run_report(1, Duration::ZERO, Duration::from_millis(3));
    report.check().expect("invariants");
    let src = &report.copies_of("src")[0];
    assert!(
        src.blocked_send_s > 0.0,
        "producer must register blocked-send time against a stalled consumer: {src:?}"
    );
    // The wait dominates the producer's compute on this graph.
    assert!(
        src.blocked_send_s > src.busy_s,
        "blocked-send should dominate: {src:?}"
    );
}

#[test]
fn starved_consumer_shows_blocked_recv() {
    // Slow producer, fast consumer: the sink spends its life waiting.
    let (_, report) = run_report(8, Duration::from_millis(3), Duration::ZERO);
    report.check().expect("invariants");
    let sink = &report.copies_of("sink")[0];
    assert!(
        sink.blocked_recv_s > 0.0,
        "starved consumer must register blocked-recv time: {sink:?}"
    );
    assert!(
        sink.blocked_recv_s > sink.busy_s,
        "blocked-recv should dominate: {sink:?}"
    );
}

#[test]
fn report_serializes_with_expected_keys() {
    let (_, report) = run_report(4, Duration::ZERO, Duration::ZERO);
    let json = report.to_json_pretty();
    for key in [
        "schema_version",
        "wall_s",
        "spinup_s",
        "steady_s",
        "drain_s",
        "busy_s",
        "blocked_send_s",
        "blocked_recv_s",
        "depth_high_water",
        "policy",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    let back: RunReport = serde_json::from_str(&json).expect("parse back");
    assert_eq!(back, report);
}
