//! The panic-containment matrix: a filter panicking in `start`, `process`
//! or `finish`, over both private-queue (round-robin) and shared
//! demand-driven streams, must always yield
//!
//! * a `Panic`-kind root cause naming the failing filter copy,
//! * one `FilterCopyStats` record per spawned copy (the panicked one
//!   included),
//! * a `run_graph` that returns within a watchdog timeout — no deadlock, no
//!   leaked threads.

use datacutter::{
    run_graph, DataBuffer, EngineConfig, FaultKind, FaultPlan, FaultSite, FaultSpec, Filter,
    FilterContext, FilterError, FilterErrorKind, GraphSpec, RunFailure, RunOutcome, SchedulePolicy,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

type Factories = HashMap<String, datacutter::engine::FilterFactory>;

struct Source {
    count: u64,
}

impl Filter for Source {
    fn start(&mut self, ctx: &mut FilterContext) -> Result<(), FilterError> {
        for tag in 0..self.count {
            ctx.emit(0, DataBuffer::new(tag, 8, tag))?;
        }
        Ok(())
    }
    fn process(
        &mut self,
        _: usize,
        _: DataBuffer,
        _: &mut FilterContext,
    ) -> Result<(), FilterError> {
        unreachable!("source has no inputs")
    }
}

struct Relay;

impl Filter for Relay {
    fn process(
        &mut self,
        _: usize,
        buf: DataBuffer,
        ctx: &mut FilterContext,
    ) -> Result<(), FilterError> {
        if ctx.output_count() > 0 {
            ctx.emit(0, buf)?;
        }
        Ok(())
    }
}

/// src(1) -> w(2) -> sink(1): 4 copies total.
const TOTAL_COPIES: usize = 4;

fn graph(policy: SchedulePolicy) -> (GraphSpec, Factories) {
    let spec = GraphSpec::new()
        .filter("src", 1)
        .filter("w", 2)
        .filter("sink", 1)
        .stream("a", "src", "w", policy)
        .stream("b", "w", "sink", SchedulePolicy::RoundRobin);
    let mut f: Factories = HashMap::new();
    f.insert(
        "src".to_string(),
        Box::new(|_| Ok(Box::new(Source { count: 40 }))),
    );
    f.insert("w".to_string(), Box::new(|_| Ok(Box::new(Relay))));
    f.insert("sink".to_string(), Box::new(|_| Ok(Box::new(Relay))));
    (spec, f)
}

/// Runs the graph on a helper thread with a deadline: a hang is a test
/// failure, not a CI timeout.
fn run_with_watchdog(spec: GraphSpec, mut factories: Factories) -> Result<RunOutcome, RunFailure> {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let r = run_graph(&spec, &mut factories, &EngineConfig::default());
        let _ = tx.send(r);
    });
    let result = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("run_graph deadlocked (watchdog expired)");
    handle.join().expect("driver thread panicked");
    result
}

fn assert_contained_panic(site: FaultSite, policy: SchedulePolicy) {
    let (spec, mut factories) = graph(policy);
    let plan = FaultPlan::new().with(FaultSpec {
        filter: "w".into(),
        copy: None,
        site,
        at_buffer: 1,
        kind: FaultKind::Panic,
        label: format!("matrix panic at {site:?}"),
    });
    plan.apply_to_factories(&mut factories);
    let err = run_with_watchdog(spec, factories).expect_err("fault must abort the run");
    assert_eq!(
        err.error.kind(),
        FilterErrorKind::Panic,
        "site {site:?} / {policy:?}: {err}"
    );
    assert_eq!(err.error.filter(), Some("w"), "{err}");
    assert!(err.error.copy().is_some(), "copy index missing: {err}");
    assert!(
        err.error.message().contains("matrix panic"),
        "payload message lost: {err}"
    );
    // Every spawned copy reports stats — the panicked one too.
    assert_eq!(
        err.stats.per_copy.len(),
        TOTAL_COPIES,
        "site {site:?} / {policy:?}: stats incomplete: {:?}",
        err.stats.per_copy
    );
    // No secondary error may claim to be an originating failure.
    for s in &err.secondary {
        assert!(
            s.is_cascade() || s.kind() == FilterErrorKind::Panic,
            "unexpected secondary error: {s}"
        );
    }
}

#[test]
fn panic_in_start_round_robin() {
    assert_contained_panic(FaultSite::Start, SchedulePolicy::RoundRobin);
}

#[test]
fn panic_in_start_demand_driven() {
    assert_contained_panic(FaultSite::Start, SchedulePolicy::DemandDriven);
}

#[test]
fn panic_in_process_round_robin() {
    assert_contained_panic(FaultSite::Process, SchedulePolicy::RoundRobin);
}

#[test]
fn panic_in_process_demand_driven() {
    assert_contained_panic(FaultSite::Process, SchedulePolicy::DemandDriven);
}

#[test]
fn panic_in_finish_round_robin() {
    assert_contained_panic(FaultSite::Finish, SchedulePolicy::RoundRobin);
}

#[test]
fn panic_in_finish_demand_driven() {
    assert_contained_panic(FaultSite::Finish, SchedulePolicy::DemandDriven);
}

#[test]
fn panicked_copy_reports_its_own_stats() {
    // Panic at the 3rd buffer of copy 0: its stats must show the two
    // buffers that were fully processed plus the one that panicked.
    let (spec, mut factories) = graph(SchedulePolicy::RoundRobin);
    let plan = FaultPlan::new().panic_at("w", 0, 3);
    plan.apply_to_factories(&mut factories);
    let err = run_with_watchdog(spec, factories).expect_err("fault must abort the run");
    assert_eq!(err.error.copy(), Some(0), "{err}");
    let faulted = err
        .stats
        .per_copy
        .iter()
        .find(|c| c.filter == "w" && c.copy == 0)
        .expect("panicked copy missing from stats");
    assert_eq!(faulted.buffers_in, 3, "stats lost on panic: {faulted:?}");
    assert_eq!(faulted.buffers_out, 2);
}

#[test]
fn sinks_observe_run_failure_before_finishing() {
    // The guarantee output filters rely on for crash-clean commits: when a
    // fault upstream ends a sink's input streams early, the run-level
    // failure flag is already raised by the time the sink's finish runs.
    struct FlagProbe {
        failed_at_finish: Arc<AtomicBool>,
    }
    impl Filter for FlagProbe {
        fn process(
            &mut self,
            _: usize,
            _: DataBuffer,
            _: &mut FilterContext,
        ) -> Result<(), FilterError> {
            Ok(())
        }
        fn finish(&mut self, ctx: &mut FilterContext) -> Result<(), FilterError> {
            self.failed_at_finish
                .store(ctx.run_failed(), Ordering::SeqCst);
            Ok(())
        }
    }
    let (spec, mut factories) = graph(SchedulePolicy::RoundRobin);
    let observed = Arc::new(AtomicBool::new(false));
    let o2 = observed.clone();
    factories.insert(
        "sink".to_string(),
        Box::new(move |_| {
            Ok(Box::new(FlagProbe {
                failed_at_finish: o2.clone(),
            }))
        }),
    );
    let plan = FaultPlan::new().panic_at("w", 0, 2);
    plan.apply_to_factories(&mut factories);
    run_with_watchdog(spec, factories).expect_err("fault must abort the run");
    assert!(
        observed.load(Ordering::SeqCst),
        "sink finished without observing the run failure"
    );
}

#[test]
fn clean_runs_never_raise_the_failure_flag() {
    struct FlagProbe {
        failed_at_finish: Arc<AtomicBool>,
    }
    impl Filter for FlagProbe {
        fn process(
            &mut self,
            _: usize,
            _: DataBuffer,
            _: &mut FilterContext,
        ) -> Result<(), FilterError> {
            Ok(())
        }
        fn finish(&mut self, ctx: &mut FilterContext) -> Result<(), FilterError> {
            self.failed_at_finish
                .store(ctx.run_failed(), Ordering::SeqCst);
            Ok(())
        }
    }
    let (spec, mut factories) = graph(SchedulePolicy::RoundRobin);
    let observed = Arc::new(AtomicBool::new(false));
    let o2 = observed.clone();
    factories.insert(
        "sink".to_string(),
        Box::new(move |_| {
            Ok(Box::new(FlagProbe {
                failed_at_finish: o2.clone(),
            }))
        }),
    );
    run_with_watchdog(spec, factories).expect("clean run");
    assert!(!observed.load(Ordering::SeqCst), "spurious failure flag");
}

#[test]
fn error_and_panic_in_different_copies_both_surface() {
    // Copy 0 returns a typed error, copy 1 panics. Whichever is selected as
    // the root, the other must appear in the secondary list — both are
    // originating failures and neither may be silently dropped.
    let (spec, mut factories) = graph(SchedulePolicy::RoundRobin);
    let plan = FaultPlan::new().error_at("w", 0, 1).panic_at("w", 1, 1);
    plan.apply_to_factories(&mut factories);
    let err = run_with_watchdog(spec, factories).expect_err("faults must abort the run");
    let mut kinds: Vec<FilterErrorKind> = vec![err.error.kind()];
    kinds.extend(err.secondary.iter().map(|e| e.kind()));
    assert!(kinds.contains(&FilterErrorKind::App), "{kinds:?}");
    assert!(kinds.contains(&FilterErrorKind::Panic), "{kinds:?}");
    assert!(!err.error.is_cascade(), "cascade selected as root: {err}");
}
