//! Property tests for the transport wire format and payload registry.
//!
//! The distributed conformance suite depends on two invariants proved
//! here over generated inputs: every frame survives an encode/decode trip
//! bit-exact (so a multi-process run delivers precisely the bytes the
//! producer emitted), and no truncation or single-byte corruption of a
//! frame stream can panic the decoder — corrupt peers must surface as
//! typed [`WireError`]s the node loop can turn into a root cause.

use datacutter::transport::wire::{
    encode_frame, encode_frame_cfg, lz_compress, lz_decompress, read_frame, spec_digest,
    write_frame, Frame, WireConfig, WireError, MAX_CREDIT_GRANT, MAX_PAYLOAD_LEN, WIRE_VERSION,
};
use datacutter::{DataBuffer, PayloadCodec};
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u16>(), any::<u32>(), any::<u64>(), any::<u32>()).prop_map(
            |(version, node, digest, features)| {
                Frame::Hello {
                    version,
                    node,
                    digest,
                    // The features word is on the wire only for v2+
                    // hellos; a v1 hello always decodes to features 0.
                    features: if version >= 2 { features } else { 0 },
                }
            }
        ),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..512),
        )
            .prop_map(|(stream, dest, tag, size, ptype, payload)| Frame::Data {
                stream,
                dest,
                tag,
                size,
                ptype,
                payload,
            }),
        (any::<u32>(), any::<u32>()).prop_map(|(stream, dest)| Frame::Eos { stream, dest }),
        (any::<u32>(), "[ -~]{0,200}")
            .prop_map(|(origin, message)| Frame::Error { origin, message }),
        (any::<u32>(), any::<u32>(), 1..=MAX_CREDIT_GRANT).prop_map(|(stream, dest, credits)| {
            Frame::Credit {
                stream,
                dest,
                credits,
            }
        }),
    ]
}

/// All four checksum × compression combinations.
fn arb_wire_config() -> impl Strategy<Value = WireConfig> {
    (any::<bool>(), any::<bool>())
        .prop_map(|(checksum, compress)| WireConfig { checksum, compress })
}

/// Payloads with long runs and repeated blocks — the shape the LZ pass
/// actually compresses — alongside plain arbitrary bytes.
fn arb_compressible() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..512),
        (any::<u8>(), 1usize..2048).prop_map(|(b, n)| vec![b; n]),
        (proptest::collection::vec(any::<u8>(), 1..32), 1usize..64).prop_map(|(block, reps)| {
            block
                .iter()
                .copied()
                .cycle()
                .take(block.len() * reps)
                .collect()
        }),
    ]
}

proptest! {
    /// Every frame round-trips bit-exact and consumes exactly its own
    /// bytes (no silent over- or under-read that would desync the stream).
    #[test]
    fn frames_roundtrip_bit_exact(frame in arb_frame()) {
        let bytes = encode_frame(&frame);
        let mut cur = std::io::Cursor::new(&bytes);
        let back = read_frame(&mut cur).unwrap().unwrap();
        prop_assert_eq!(&back, &frame);
        prop_assert_eq!(cur.position() as usize, bytes.len());
    }

    /// A batched sequence of frames reads back in order, then yields a
    /// clean `Ok(None)` at the boundary — the shape of a healthy
    /// connection teardown.
    #[test]
    fn frame_sequences_roundtrip_in_order(frames in proptest::collection::vec(arb_frame(), 0..8)) {
        let mut bytes = Vec::new();
        for f in &frames {
            write_frame(&mut bytes, f).unwrap();
        }
        let mut cur = std::io::Cursor::new(&bytes);
        for f in &frames {
            let back = read_frame(&mut cur).unwrap().unwrap();
            prop_assert_eq!(&back, f);
        }
        prop_assert!(read_frame(&mut cur).unwrap().is_none());
    }

    /// EOF inside a frame is always the typed `Truncated` error — never a
    /// panic, never a bogus frame — for every possible cut point.
    #[test]
    fn every_truncation_is_typed(frame in arb_frame()) {
        let bytes = encode_frame(&frame);
        for cut in 1..bytes.len() {
            let mut cur = std::io::Cursor::new(&bytes[..cut]);
            match read_frame(&mut cur) {
                Err(WireError::Truncated { .. }) => {}
                other => prop_assert!(false, "prefix of {} bytes gave {:?}", cut, other),
            }
        }
    }

    /// Flipping any single byte never panics the decoder: the result is a
    /// frame (corruption landed in a value field) or a typed error, and
    /// corrupting the magic word is always detected as such.
    #[test]
    fn single_byte_corruption_never_panics(frame in arb_frame(), pos in any::<prop::sample::Index>(), flip in 1..=255u8) {
        let mut bytes = encode_frame(&frame);
        let pos = pos.index(bytes.len());
        bytes[pos] ^= flip;
        let mut cur = std::io::Cursor::new(&bytes);
        let res = read_frame(&mut cur);
        if pos < 4 {
            prop_assert!(
                matches!(res, Err(WireError::BadMagic(_))),
                "corrupt magic at byte {} gave {:?}", pos, res
            );
        } else {
            // Any outcome but a panic is acceptable; a decoded frame must
            // differ from the original (the flip has to land somewhere).
            if let Ok(Some(back)) = res {
                prop_assert_ne!(back, frame);
            }
        }
    }

    /// Arbitrary byte soup fed to the reader is rejected or consumed
    /// without panicking (desync recovery is the caller's job; typed
    /// errors are the decoder's).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut cur = std::io::Cursor::new(&bytes);
        let _ = read_frame(&mut cur);
    }

    /// The handshake digest is deterministic and sensitive to both the
    /// spec bytes and the node count.
    #[test]
    fn spec_digest_separates_inputs(a in proptest::collection::vec(any::<u8>(), 0..64),
                                    b in proptest::collection::vec(any::<u8>(), 0..64),
                                    n in 1usize..16, m in 1usize..16) {
        prop_assert_eq!(spec_digest(&a, n), spec_digest(&a, n));
        if a != b {
            prop_assert_ne!(spec_digest(&a, n), spec_digest(&b, n));
        }
        if n != m {
            prop_assert_ne!(spec_digest(&a, n), spec_digest(&a, m));
        }
    }

    /// The payload registry round-trips buffers bit-exact, preserving the
    /// producer-declared size and routing tag.
    #[test]
    fn payload_registry_roundtrips(payload in proptest::collection::vec(any::<u8>(), 0..256),
                                   size in any::<usize>(), tag in any::<u64>()) {
        let mut codec = PayloadCodec::new();
        codec.register::<Vec<u8>, _, _>(7, |v| v.clone(), |b| Ok(b.to_vec()));
        let buf = DataBuffer::new(payload.clone(), size, tag);
        let (ptype, bytes) = codec.encode(&buf).unwrap();
        prop_assert_eq!(ptype, 7);
        let back = codec.decode(ptype, &bytes, size, tag).unwrap();
        prop_assert_eq!(back.downcast::<Vec<u8>>().unwrap(), &payload);
        prop_assert_eq!(back.size_bytes(), size);
        prop_assert_eq!(back.tag(), tag);
    }

    /// A decoder's validation error surfaces as `BadPayload`, never a
    /// panic, for arbitrary input bytes.
    #[test]
    fn payload_decoder_errors_are_typed(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        let mut codec = PayloadCodec::new();
        codec.register::<u64, _, _>(
            3,
            |v| v.to_le_bytes().to_vec(),
            |b| {
                let arr: [u8; 8] = b.try_into().map_err(|_| "u64 wants 8 bytes".to_string())?;
                Ok(u64::from_le_bytes(arr))
            },
        );
        match codec.decode(3, &bytes, 8, 0) {
            Ok(_) => prop_assert_eq!(bytes.len(), 8),
            Err(WireError::BadPayload(_)) => prop_assert_ne!(bytes.len(), 8),
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
    }

    /// Data frames round-trip bit-exact under every checksum × compression
    /// combination — the decoder recovers the logical payload regardless of
    /// what the wire carried — and still consume exactly their own bytes.
    #[test]
    fn data_roundtrips_bit_exact_under_every_wire_config(
        payload in arb_compressible(),
        cfg in arb_wire_config(),
        stream in any::<u32>(), dest in any::<u32>(),
        tag in any::<u64>(), size in any::<u64>(), ptype in any::<u16>(),
    ) {
        let frame = Frame::Data { stream, dest, tag, size, ptype, payload };
        let bytes = encode_frame_cfg(&frame, &cfg);
        let mut cur = std::io::Cursor::new(&bytes);
        let back = read_frame(&mut cur).unwrap().unwrap();
        prop_assert_eq!(&back, &frame);
        prop_assert_eq!(cur.position() as usize, bytes.len());
    }

    /// With checksums on, flipping ANY payload byte on the wire is caught
    /// as the typed `ChecksumMismatch` — never a panic, never silently
    /// delivered data.
    #[test]
    fn checksum_detects_any_payload_corruption(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        pos in any::<prop::sample::Index>(),
        flip in 1..=255u8,
    ) {
        let cfg = WireConfig { checksum: true, compress: false };
        let frame = Frame::Data {
            stream: 1, dest: 2, tag: 3, size: payload.len() as u64, ptype: 4,
            payload: payload.clone(),
        };
        let mut bytes = encode_frame_cfg(&frame, &cfg);
        // Compression is off, so the wire body is exactly the payload, at
        // the very end of the frame.
        let body_start = bytes.len() - payload.len();
        let at = body_start + pos.index(payload.len());
        bytes[at] ^= flip;
        let mut cur = std::io::Cursor::new(&bytes);
        match read_frame(&mut cur) {
            Err(WireError::ChecksumMismatch { expected, computed }) => {
                prop_assert_ne!(expected, computed);
            }
            other => prop_assert!(false, "corrupt payload byte gave {:?}", other),
        }
    }

    /// The LZ pass itself round-trips bit-exact for compressible and
    /// incompressible inputs alike.
    #[test]
    fn lz_roundtrips_bit_exact(input in arb_compressible()) {
        let packed = lz_compress(&input);
        let back = lz_decompress(&packed, input.len()).unwrap();
        prop_assert_eq!(back, input);
    }

    /// Corrupting any byte of a compressed block yields a typed error or a
    /// wrong-but-bounded output — never a panic or an out-of-bounds copy.
    #[test]
    fn lz_decoder_never_panics_on_corruption(
        input in arb_compressible(),
        pos in any::<prop::sample::Index>(),
        flip in 1..=255u8,
    ) {
        let mut packed = lz_compress(&input);
        if packed.is_empty() {
            return Ok(());
        }
        let at = pos.index(packed.len());
        packed[at] ^= flip;
        if let Ok(out) = lz_decompress(&packed, input.len()) {
            prop_assert_eq!(out.len(), input.len());
        }
    }

    /// Credit frames round-trip across the full legal grant range.
    #[test]
    fn credit_frames_roundtrip(stream in any::<u32>(), dest in any::<u32>(),
                               credits in 1..=MAX_CREDIT_GRANT) {
        let frame = Frame::Credit { stream, dest, credits };
        let bytes = encode_frame(&frame);
        let mut cur = std::io::Cursor::new(&bytes);
        prop_assert_eq!(read_frame(&mut cur).unwrap().unwrap(), frame);
    }

    /// Out-of-range grants (zero, above the cap) are rejected on read with
    /// the typed `BadCredit`, whatever the route key.
    #[test]
    fn out_of_range_credits_rejected(stream in any::<u32>(), dest in any::<u32>(),
                                     excess in prop_oneof![
                                         Just(0u32),
                                         (MAX_CREDIT_GRANT + 1)..=u32::MAX,
                                     ]) {
        let mut bytes = encode_frame(&Frame::Credit { stream, dest, credits: 1 });
        let at = bytes.len() - 4;
        bytes[at..].copy_from_slice(&excess.to_le_bytes());
        let mut cur = std::io::Cursor::new(&bytes);
        prop_assert!(matches!(
            read_frame(&mut cur),
            Err(WireError::BadCredit(c)) if c == excess
        ));
    }
}

/// The declared-length bound rejects a hostile payload length before
/// allocating (deterministic, not property-based: the interesting input
/// is exactly the bound).
#[test]
fn oversized_lengths_rejected_before_allocation() {
    let mut bytes = encode_frame(&Frame::Data {
        stream: 0,
        dest: 0,
        tag: 0,
        size: 0,
        ptype: 0,
        payload: Vec::new(),
    });
    let plen_off = bytes.len() - 4;
    bytes[plen_off..].copy_from_slice(&(MAX_PAYLOAD_LEN + 1).to_le_bytes());
    let mut cur = std::io::Cursor::new(&bytes);
    assert!(matches!(
        read_frame(&mut cur),
        Err(WireError::Oversized {
            field: "payload",
            ..
        })
    ));
}

/// A version-1 `Hello` has no features word: it is four bytes shorter on
/// the wire than a version-2 one and always decodes with `features == 0`.
/// The node layer turns the version difference into a typed handshake
/// rejection; this pins the wire-level shape that makes that detection
/// possible against a genuine v1 peer.
#[test]
fn v1_hello_has_no_features_word_and_is_distinguishable() {
    let v2 = encode_frame(&Frame::Hello {
        version: WIRE_VERSION,
        node: 3,
        digest: 99,
        features: 0b11,
    });
    let v1 = encode_frame(&Frame::Hello {
        version: 1,
        node: 3,
        digest: 99,
        features: 0,
    });
    assert_eq!(v2.len(), v1.len() + 4);
    let mut cur = std::io::Cursor::new(&v1);
    match read_frame(&mut cur).unwrap().unwrap() {
        Frame::Hello {
            version, features, ..
        } => {
            assert_eq!(version, 1);
            assert_eq!(features, 0);
            assert_ne!(version, WIRE_VERSION);
        }
        other => panic!("expected Hello, got {other:?}"),
    }
    assert_eq!(cur.position() as usize, v1.len());
}
