//! Property tests for the transport wire format and payload registry.
//!
//! The distributed conformance suite depends on two invariants proved
//! here over generated inputs: every frame survives an encode/decode trip
//! bit-exact (so a multi-process run delivers precisely the bytes the
//! producer emitted), and no truncation or single-byte corruption of a
//! frame stream can panic the decoder — corrupt peers must surface as
//! typed [`WireError`]s the node loop can turn into a root cause.

use datacutter::transport::wire::{
    encode_frame, read_frame, spec_digest, write_frame, Frame, WireError, MAX_PAYLOAD_LEN,
};
use datacutter::{DataBuffer, PayloadCodec};
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u16>(), any::<u32>(), any::<u64>()).prop_map(|(version, node, digest)| {
            Frame::Hello {
                version,
                node,
                digest,
            }
        }),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..512),
        )
            .prop_map(|(stream, dest, tag, size, ptype, payload)| Frame::Data {
                stream,
                dest,
                tag,
                size,
                ptype,
                payload,
            }),
        (any::<u32>(), any::<u32>()).prop_map(|(stream, dest)| Frame::Eos { stream, dest }),
        (any::<u32>(), "[ -~]{0,200}")
            .prop_map(|(origin, message)| Frame::Error { origin, message }),
    ]
}

proptest! {
    /// Every frame round-trips bit-exact and consumes exactly its own
    /// bytes (no silent over- or under-read that would desync the stream).
    #[test]
    fn frames_roundtrip_bit_exact(frame in arb_frame()) {
        let bytes = encode_frame(&frame);
        let mut cur = std::io::Cursor::new(&bytes);
        let back = read_frame(&mut cur).unwrap().unwrap();
        prop_assert_eq!(&back, &frame);
        prop_assert_eq!(cur.position() as usize, bytes.len());
    }

    /// A batched sequence of frames reads back in order, then yields a
    /// clean `Ok(None)` at the boundary — the shape of a healthy
    /// connection teardown.
    #[test]
    fn frame_sequences_roundtrip_in_order(frames in proptest::collection::vec(arb_frame(), 0..8)) {
        let mut bytes = Vec::new();
        for f in &frames {
            write_frame(&mut bytes, f).unwrap();
        }
        let mut cur = std::io::Cursor::new(&bytes);
        for f in &frames {
            let back = read_frame(&mut cur).unwrap().unwrap();
            prop_assert_eq!(&back, f);
        }
        prop_assert!(read_frame(&mut cur).unwrap().is_none());
    }

    /// EOF inside a frame is always the typed `Truncated` error — never a
    /// panic, never a bogus frame — for every possible cut point.
    #[test]
    fn every_truncation_is_typed(frame in arb_frame()) {
        let bytes = encode_frame(&frame);
        for cut in 1..bytes.len() {
            let mut cur = std::io::Cursor::new(&bytes[..cut]);
            match read_frame(&mut cur) {
                Err(WireError::Truncated { .. }) => {}
                other => prop_assert!(false, "prefix of {} bytes gave {:?}", cut, other),
            }
        }
    }

    /// Flipping any single byte never panics the decoder: the result is a
    /// frame (corruption landed in a value field) or a typed error, and
    /// corrupting the magic word is always detected as such.
    #[test]
    fn single_byte_corruption_never_panics(frame in arb_frame(), pos in any::<prop::sample::Index>(), flip in 1..=255u8) {
        let mut bytes = encode_frame(&frame);
        let pos = pos.index(bytes.len());
        bytes[pos] ^= flip;
        let mut cur = std::io::Cursor::new(&bytes);
        let res = read_frame(&mut cur);
        if pos < 4 {
            prop_assert!(
                matches!(res, Err(WireError::BadMagic(_))),
                "corrupt magic at byte {} gave {:?}", pos, res
            );
        } else {
            // Any outcome but a panic is acceptable; a decoded frame must
            // differ from the original (the flip has to land somewhere).
            if let Ok(Some(back)) = res {
                prop_assert_ne!(back, frame);
            }
        }
    }

    /// Arbitrary byte soup fed to the reader is rejected or consumed
    /// without panicking (desync recovery is the caller's job; typed
    /// errors are the decoder's).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut cur = std::io::Cursor::new(&bytes);
        let _ = read_frame(&mut cur);
    }

    /// The handshake digest is deterministic and sensitive to both the
    /// spec bytes and the node count.
    #[test]
    fn spec_digest_separates_inputs(a in proptest::collection::vec(any::<u8>(), 0..64),
                                    b in proptest::collection::vec(any::<u8>(), 0..64),
                                    n in 1usize..16, m in 1usize..16) {
        prop_assert_eq!(spec_digest(&a, n), spec_digest(&a, n));
        if a != b {
            prop_assert_ne!(spec_digest(&a, n), spec_digest(&b, n));
        }
        if n != m {
            prop_assert_ne!(spec_digest(&a, n), spec_digest(&a, m));
        }
    }

    /// The payload registry round-trips buffers bit-exact, preserving the
    /// producer-declared size and routing tag.
    #[test]
    fn payload_registry_roundtrips(payload in proptest::collection::vec(any::<u8>(), 0..256),
                                   size in any::<usize>(), tag in any::<u64>()) {
        let mut codec = PayloadCodec::new();
        codec.register::<Vec<u8>, _, _>(7, |v| v.clone(), |b| Ok(b.to_vec()));
        let buf = DataBuffer::new(payload.clone(), size, tag);
        let (ptype, bytes) = codec.encode(&buf).unwrap();
        prop_assert_eq!(ptype, 7);
        let back = codec.decode(ptype, &bytes, size, tag).unwrap();
        prop_assert_eq!(back.downcast::<Vec<u8>>().unwrap(), &payload);
        prop_assert_eq!(back.size_bytes(), size);
        prop_assert_eq!(back.tag(), tag);
    }

    /// A decoder's validation error surfaces as `BadPayload`, never a
    /// panic, for arbitrary input bytes.
    #[test]
    fn payload_decoder_errors_are_typed(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        let mut codec = PayloadCodec::new();
        codec.register::<u64, _, _>(
            3,
            |v| v.to_le_bytes().to_vec(),
            |b| {
                let arr: [u8; 8] = b.try_into().map_err(|_| "u64 wants 8 bytes".to_string())?;
                Ok(u64::from_le_bytes(arr))
            },
        );
        match codec.decode(3, &bytes, 8, 0) {
            Ok(_) => prop_assert_eq!(bytes.len(), 8),
            Err(WireError::BadPayload(_)) => prop_assert_ne!(bytes.len(), 8),
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
    }
}

/// The declared-length bound rejects a hostile payload length before
/// allocating (deterministic, not property-based: the interesting input
/// is exactly the bound).
#[test]
fn oversized_lengths_rejected_before_allocation() {
    let mut bytes = encode_frame(&Frame::Data {
        stream: 0,
        dest: 0,
        tag: 0,
        size: 0,
        ptype: 0,
        payload: Vec::new(),
    });
    let plen_off = bytes.len() - 4;
    bytes[plen_off..].copy_from_slice(&(MAX_PAYLOAD_LEN + 1).to_le_bytes());
    let mut cur = std::io::Cursor::new(&bytes);
    assert!(matches!(
        read_frame(&mut cur),
        Err(WireError::Oversized {
            field: "payload",
            ..
        })
    ));
}
