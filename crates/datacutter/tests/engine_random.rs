//! Randomized tests of the threaded engine: delivery guarantees and policy
//! laws over arbitrary pipeline shapes and buffer counts.

use datacutter::{
    run_graph, DataBuffer, EngineConfig, Filter, FilterContext, FilterError, GraphSpec,
    SchedulePolicy,
};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

struct Source {
    count: u64,
}

impl Filter for Source {
    fn start(&mut self, ctx: &mut FilterContext) -> Result<(), FilterError> {
        let (copies, me) = (ctx.num_copies() as u64, ctx.copy_index() as u64);
        for tag in (0..self.count).filter(|t| t % copies == me) {
            ctx.emit(0, DataBuffer::new(tag, 8, tag))?;
        }
        Ok(())
    }
    fn process(
        &mut self,
        _: usize,
        _: DataBuffer,
        _: &mut FilterContext,
    ) -> Result<(), FilterError> {
        unreachable!()
    }
}

struct Relay {
    log: Arc<Mutex<Vec<(usize, u64)>>>,
}

impl Filter for Relay {
    fn process(
        &mut self,
        _: usize,
        buf: DataBuffer,
        ctx: &mut FilterContext,
    ) -> Result<(), FilterError> {
        self.log.lock().push((ctx.copy_index(), buf.tag()));
        if ctx.output_count() > 0 {
            ctx.emit(0, buf)?;
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct Shape {
    buffers: u64,
    sources: usize,
    stages: Vec<(usize, u8)>, // (copies, policy)
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (
        1u64..120,
        1usize..4,
        proptest::collection::vec((1usize..5, 0u8..3), 1..4),
    )
        .prop_map(|(buffers, sources, stages)| Shape {
            buffers,
            sources,
            stages,
        })
}

fn policy_of(p: u8) -> SchedulePolicy {
    match p {
        0 => SchedulePolicy::RoundRobin,
        1 => SchedulePolicy::DemandDriven,
        _ => SchedulePolicy::ByTagModulo,
    }
}

type StageLog = Arc<Mutex<Vec<(usize, u64)>>>;

fn run_shape(shape: &Shape) -> Vec<StageLog> {
    let mut spec = GraphSpec::new().filter("s0", shape.sources);
    let mut prev = "s0".to_string();
    for (i, (copies, policy)) in shape.stages.iter().enumerate() {
        let name = format!("s{}", i + 1);
        spec =
            spec.filter(&name, *copies)
                .stream(&format!("e{i}"), &prev, &name, policy_of(*policy));
        prev = name;
    }
    let mut factories: HashMap<String, datacutter::engine::FilterFactory> = HashMap::new();
    let count = shape.buffers;
    factories.insert(
        "s0".into(),
        Box::new(move |_| Ok(Box::new(Source { count }))),
    );
    let mut logs = Vec::new();
    for i in 0..shape.stages.len() {
        let log = Arc::new(Mutex::new(Vec::new()));
        logs.push(log.clone());
        factories.insert(
            format!("s{}", i + 1),
            Box::new(move |_| Ok(Box::new(Relay { log: log.clone() }))),
        );
    }
    run_graph(&spec, &mut factories, &EngineConfig::default()).expect("run");
    logs
}

proptest! {
    // Thread spawning is comparatively expensive; keep the case count sane.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_stage_sees_each_tag_exactly_once(shape in shape_strategy()) {
        let logs = run_shape(&shape);
        for (i, log) in logs.iter().enumerate() {
            let mut tags: Vec<u64> = log.lock().iter().map(|(_, t)| *t).collect();
            tags.sort_unstable();
            let expect: Vec<u64> = (0..shape.buffers).collect();
            prop_assert_eq!(&tags, &expect, "stage {} delivery broken", i + 1);
        }
    }

    #[test]
    fn tag_modulo_is_exact_everywhere(shape in shape_strategy()) {
        let logs = run_shape(&shape);
        for (i, (copies, policy)) in shape.stages.iter().enumerate() {
            if policy_of(*policy) != SchedulePolicy::ByTagModulo {
                continue;
            }
            for (copy, tag) in logs[i].lock().iter() {
                prop_assert_eq!(*copy as u64, tag % *copies as u64);
            }
        }
    }

    #[test]
    fn single_producer_round_robin_is_balanced(
        buffers in 1u64..120,
        copies in 1usize..5,
    ) {
        // With one producer, RR fairness is exact (multi-producer RR is
        // only fair per producer).
        let shape = Shape {
            buffers,
            sources: 1,
            stages: vec![(copies, 0)],
        };
        let logs = run_shape(&shape);
        let mut per_copy = vec![0u64; copies];
        for (copy, _) in logs[0].lock().iter() {
            per_copy[*copy] += 1;
        }
        let (min, max) = (
            *per_copy.iter().min().unwrap(),
            *per_copy.iter().max().unwrap(),
        );
        prop_assert!(max - min <= 1, "unbalanced RR: {:?}", per_copy);
    }
}
