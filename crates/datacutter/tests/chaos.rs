//! Chaos tests: randomized fault schedules over linear pipelines.
//!
//! Each case builds a multi-stage graph with randomized copy counts and
//! scheduling policies, arms a randomized [`FaultPlan`], and asserts the
//! engine's failure contract: the run terminates (watchdog), the injected
//! fault is reported as the root cause with the right kind and filter name,
//! and benign faults (delays, emit-stalls) never change the delivered
//! results.
//!
//! Seeds are fixed for reproducibility; set `H4D_CHAOS_SEED` to replay a
//! single seed (e.g. `H4D_CHAOS_SEED=7 cargo test -p datacutter chaos`).

use datacutter::{
    reserve_loopback_listeners, run_graph, run_node, DataBuffer, EngineConfig, FaultKind,
    FaultPlan, FaultSite, FaultSpec, Filter, FilterContext, FilterError, FilterErrorKind,
    GraphSpec, NodeConfig, PayloadCodec, RunFailure, RunOutcome, SchedulePolicy, TransportFault,
    TransportFaultKind,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

type Factories = HashMap<String, datacutter::engine::FilterFactory>;

struct Source {
    count: u64,
}

impl Filter for Source {
    fn start(&mut self, ctx: &mut FilterContext) -> Result<(), FilterError> {
        let (copies, me) = (ctx.num_copies() as u64, ctx.copy_index() as u64);
        for tag in (0..self.count).filter(|t| t % copies == me) {
            ctx.emit(0, DataBuffer::new(tag, 8, tag))?;
        }
        Ok(())
    }
    fn process(
        &mut self,
        _: usize,
        _: DataBuffer,
        _: &mut FilterContext,
    ) -> Result<(), FilterError> {
        unreachable!("source has no inputs")
    }
}

struct Relay {
    log: Arc<Mutex<Vec<u64>>>,
}

impl Filter for Relay {
    fn process(
        &mut self,
        _: usize,
        buf: DataBuffer,
        ctx: &mut FilterContext,
    ) -> Result<(), FilterError> {
        self.log.lock().push(buf.tag());
        if ctx.output_count() > 0 {
            ctx.emit(0, buf)?;
        }
        Ok(())
    }
}

struct Case {
    spec: GraphSpec,
    factories: Factories,
    stage_names: Vec<String>,
    /// Per-stage tag logs (stage 1..).
    logs: Vec<Arc<Mutex<Vec<u64>>>>,
    buffers: u64,
}

fn policy_of(rng: &mut StdRng) -> SchedulePolicy {
    match rng.gen_range(0..3) {
        0 => SchedulePolicy::RoundRobin,
        1 => SchedulePolicy::DemandDriven,
        _ => SchedulePolicy::ByTagModulo,
    }
}

fn build_case(rng: &mut StdRng) -> Case {
    let buffers = rng.gen_range(5..80);
    let stages = rng.gen_range(1..4usize);
    let mut spec = GraphSpec::new().filter("stage0", rng.gen_range(1..3usize));
    let mut factories: Factories = HashMap::new();
    factories.insert(
        "stage0".into(),
        Box::new(move |_| Ok(Box::new(Source { count: buffers }))),
    );
    let mut stage_names = vec!["stage0".to_string()];
    let mut logs = Vec::new();
    for i in 1..=stages {
        let name = format!("stage{i}");
        let copies = rng.gen_range(1..4usize);
        let policy = policy_of(rng);
        spec =
            spec.filter(&name, copies)
                .stream(&format!("e{i}"), &stage_names[i - 1], &name, policy);
        let log = Arc::new(Mutex::new(Vec::new()));
        logs.push(log.clone());
        factories.insert(
            name.clone(),
            Box::new(move |_| Ok(Box::new(Relay { log: log.clone() }))),
        );
        stage_names.push(name);
    }
    Case {
        spec,
        factories,
        stage_names,
        logs,
        buffers,
    }
}

fn run_with_watchdog(spec: GraphSpec, mut factories: Factories) -> Result<RunOutcome, RunFailure> {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let r = run_graph(&spec, &mut factories, &EngineConfig::default());
        let _ = tx.send(r);
    });
    let result = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("run_graph deadlocked (watchdog expired)");
    handle.join().expect("driver thread panicked");
    result
}

fn seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("H4D_CHAOS_SEED") {
        return vec![s.parse().expect("H4D_CHAOS_SEED must be a u64")];
    }
    (0..16).collect()
}

#[test]
fn injected_lethal_faults_are_reported_as_root_cause() {
    for seed in seeds() {
        let mut rng = StdRng::seed_from_u64(seed);
        let case = build_case(&mut rng);
        // Arm one lethal fault at a random non-source stage: the first
        // buffer of any copy (guaranteed to fire — every stage receives
        // every buffer), or its start callback.
        let victim = case.stage_names[rng.gen_range(1..case.stage_names.len())].clone();
        let lethal_panic = rng.gen_bool(0.5);
        let site = if rng.gen_bool(0.3) {
            FaultSite::Start
        } else {
            FaultSite::Process
        };
        let plan = FaultPlan::new().with(FaultSpec {
            filter: victim.clone(),
            copy: None,
            site,
            at_buffer: 1,
            kind: if lethal_panic {
                FaultKind::Panic
            } else {
                FaultKind::Error
            },
            label: format!("chaos fault seed {seed}"),
        });
        let mut factories = case.factories;
        plan.apply_to_factories(&mut factories);
        let err =
            run_with_watchdog(case.spec, factories).expect_err("lethal fault must abort the run");
        let expect_kind = if lethal_panic {
            FilterErrorKind::Panic
        } else {
            FilterErrorKind::App
        };
        assert_eq!(err.error.kind(), expect_kind, "seed {seed}: {err}");
        assert_eq!(
            err.error.filter(),
            Some(victim.as_str()),
            "seed {seed}: root cause names the wrong filter: {err}"
        );
        assert!(
            err.error
                .message()
                .contains(&format!("chaos fault seed {seed}")),
            "seed {seed}: fault label lost: {err}"
        );
        assert!(!err.error.is_cascade(), "seed {seed}: cascade won: {err}");
    }
}

#[test]
fn benign_faults_do_not_change_results() {
    // Delays and emit-stalls are disruptions, not failures: every stage
    // must still see every tag exactly once.
    for seed in seeds() {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x5eed));
        let case = build_case(&mut rng);
        let victim = case.stage_names[rng.gen_range(1..case.stage_names.len())].clone();
        let kind = if rng.gen_bool(0.5) {
            FaultKind::Delay(Duration::from_millis(rng.gen_range(1..20)))
        } else {
            FaultKind::EmitStall
        };
        let plan = FaultPlan::new().with(FaultSpec {
            filter: victim,
            copy: Some(0),
            site: FaultSite::Process,
            at_buffer: rng.gen_range(1..4),
            kind,
            label: format!("benign chaos seed {seed}"),
        });
        let mut factories = case.factories;
        plan.apply_to_factories(&mut factories);
        run_with_watchdog(case.spec, factories)
            .unwrap_or_else(|e| panic!("seed {seed}: benign fault killed the run: {e}"));
        for (i, log) in case.logs.iter().enumerate() {
            let mut tags = log.lock().clone();
            tags.sort_unstable();
            let expect: Vec<u64> = (0..case.buffers).collect();
            assert_eq!(
                tags,
                expect,
                "seed {seed}: stage {} delivery changed under benign faults",
                i + 1
            );
        }
    }
}

// ---- distributed transport chaos -----------------------------------------
//
// The same graphs split across two cooperating `run_node` partitions over
// loopback TCP (both partitions in this process, on threads — the
// multi-process path is covered by the pipeline's conformance suite).

/// The toy payload codec the distributed cases share: `u64` under tag 1.
fn u64_codec() -> Arc<PayloadCodec> {
    let mut c = PayloadCodec::new();
    c.register::<u64, _, _>(
        1,
        |v| v.to_le_bytes().to_vec(),
        |b| {
            let arr: [u8; 8] = b.try_into().map_err(|_| "u64 wants 8 bytes".to_string())?;
            Ok(u64::from_le_bytes(arr))
        },
    );
    Arc::new(c)
}

/// A 3-stage pipeline ping-ponging across two nodes: sources on node 0,
/// first relay stage on node 1, final relay back on node 0 — both
/// directions of every connection carry data.
fn dist_spec() -> GraphSpec {
    GraphSpec::new()
        .filter_placed("stage0", vec![0, 0])
        .filter_placed("stage1", vec![1, 1])
        .filter_placed("stage2", vec![0])
        .stream("s1", "stage0", "stage1", SchedulePolicy::ByTagModulo)
        .stream("s2", "stage1", "stage2", SchedulePolicy::RoundRobin)
}

fn dist_factories(buffers: u64, logs: &[Arc<Mutex<Vec<u64>>>; 2]) -> Factories {
    let mut f: Factories = HashMap::new();
    f.insert(
        "stage0".into(),
        Box::new(move |_| Ok(Box::new(Source { count: buffers }))),
    );
    let l1 = logs[0].clone();
    f.insert(
        "stage1".into(),
        Box::new(move |_| Ok(Box::new(Relay { log: l1.clone() }))),
    );
    let l2 = logs[1].clone();
    f.insert(
        "stage2".into(),
        Box::new(move |_| Ok(Box::new(Relay { log: l2.clone() }))),
    );
    f
}

/// Runs both partitions of [`dist_spec`] concurrently under a watchdog,
/// returning each node's result (indexed by node id).
fn run_two_nodes(
    buffers: u64,
    logs: &[Arc<Mutex<Vec<u64>>>; 2],
    faults: [Option<TransportFault>; 2],
) -> Vec<Result<RunOutcome, RunFailure>> {
    // Pre-bound listeners: the reservation is handed straight to each
    // node, so parallel test processes can never steal the ports.
    let (addrs, listeners) = reserve_loopback_listeners(2).expect("loopback ports");
    let (tx, rx) = mpsc::channel();
    let mut handles = Vec::new();
    for node in 0..2 {
        let spec = dist_spec();
        let mut factories = dist_factories(buffers, logs);
        let mut cfg = NodeConfig::new(node, addrs.clone());
        cfg.listener = Some(listeners[node].clone());
        cfg.fault = faults[node];
        let codec = u64_codec();
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || {
            let r = run_node(&spec, &mut factories, codec, &cfg);
            let _ = tx.send((node, r));
        }));
    }
    drop(tx);
    let mut results: Vec<Option<Result<RunOutcome, RunFailure>>> = vec![None, None];
    for _ in 0..2 {
        let (node, r) = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("distributed run deadlocked (watchdog expired)");
        results[node] = Some(r);
    }
    for h in handles {
        h.join().expect("node thread panicked");
    }
    results.into_iter().map(|r| r.expect("both sent")).collect()
}

#[test]
fn distributed_loopback_delivers_what_a_single_process_does() {
    let buffers = 37;
    let expect: Vec<u64> = (0..buffers).collect();

    // Reference: the same spec in one process (placement ignored).
    let local_logs = [
        Arc::new(Mutex::new(Vec::new())),
        Arc::new(Mutex::new(Vec::new())),
    ];
    run_with_watchdog(dist_spec(), dist_factories(buffers, &local_logs))
        .expect("single-process run failed");

    // Two cooperating partitions over loopback TCP.
    let dist_logs = [
        Arc::new(Mutex::new(Vec::new())),
        Arc::new(Mutex::new(Vec::new())),
    ];
    let results = run_two_nodes(buffers, &dist_logs, [None, None]);
    for (node, r) in results.iter().enumerate() {
        assert!(r.is_ok(), "node {node} failed: {}", r.as_ref().unwrap_err());
    }

    for (stage, (local, dist)) in local_logs.iter().zip(&dist_logs).enumerate() {
        let mut l = local.lock().clone();
        let mut d = dist.lock().clone();
        l.sort_unstable();
        d.sort_unstable();
        assert_eq!(l, expect, "single-process stage {} delivery", stage + 1);
        assert_eq!(d, expect, "distributed stage {} delivery", stage + 1);
    }
}

#[test]
fn dropped_connection_is_an_io_root_cause_on_both_nodes() {
    let logs = [
        Arc::new(Mutex::new(Vec::new())),
        Arc::new(Mutex::new(Vec::new())),
    ];
    // Node 0's writer hard-closes its connection after two data frames —
    // a peer crash as seen from node 1, an injected local loss on node 0.
    let fault = TransportFault {
        peer: None,
        after_frames: 2,
        kind: TransportFaultKind::Drop,
    };
    let results = run_two_nodes(200, &logs, [Some(fault), None]);
    let err0 = results[0].as_ref().expect_err("node 0 must fail");
    let err1 = results[1].as_ref().expect_err("node 1 must fail");
    assert_eq!(err0.error.kind(), FilterErrorKind::Io, "node 0: {err0}");
    assert_eq!(err1.error.kind(), FilterErrorKind::Io, "node 1: {err1}");
    // Each side's root cause names the dead peer, not a local cascade.
    assert!(
        err0.error.message().contains("node 1"),
        "node 0 root cause does not name the peer: {err0}"
    );
    assert!(
        err1.error.message().contains("node 0"),
        "node 1 root cause does not name the peer: {err1}"
    );
}

#[test]
fn stalled_writer_is_benign_backpressure() {
    let buffers = 25;
    let logs = [
        Arc::new(Mutex::new(Vec::new())),
        Arc::new(Mutex::new(Vec::new())),
    ];
    let fault = TransportFault {
        peer: Some(1),
        after_frames: 1,
        kind: TransportFaultKind::Stall(Duration::from_millis(3)),
    };
    let results = run_two_nodes(buffers, &logs, [Some(fault), None]);
    for (node, r) in results.iter().enumerate() {
        assert!(
            r.is_ok(),
            "node {node} failed under a benign stall: {}",
            r.as_ref().unwrap_err()
        );
    }
    let expect: Vec<u64> = (0..buffers).collect();
    for (stage, log) in logs.iter().enumerate() {
        let mut tags = log.lock().clone();
        tags.sort_unstable();
        assert_eq!(tags, expect, "stage {} delivery under stall", stage + 1);
    }
}

#[test]
fn every_copy_reports_stats_under_chaos() {
    for seed in seeds() {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7));
        let case = build_case(&mut rng);
        let spawned: usize = case.spec.filters.iter().map(|f| f.copies).sum();
        let victim = case.stage_names[rng.gen_range(1..case.stage_names.len())].clone();
        let plan = FaultPlan::new().with(FaultSpec {
            filter: victim,
            copy: None,
            site: FaultSite::Process,
            at_buffer: 1,
            kind: FaultKind::Panic,
            label: format!("stats chaos seed {seed}"),
        });
        let mut factories = case.factories;
        plan.apply_to_factories(&mut factories);
        let err = run_with_watchdog(case.spec, factories).expect_err("fault must abort");
        assert_eq!(
            err.stats.per_copy.len(),
            spawned,
            "seed {seed}: not every spawned copy reported stats"
        );
    }
}
