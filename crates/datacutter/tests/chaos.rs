//! Chaos tests: randomized fault schedules over linear pipelines.
//!
//! Each case builds a multi-stage graph with randomized copy counts and
//! scheduling policies, arms a randomized [`FaultPlan`], and asserts the
//! engine's failure contract: the run terminates (watchdog), the injected
//! fault is reported as the root cause with the right kind and filter name,
//! and benign faults (delays, emit-stalls) never change the delivered
//! results.
//!
//! Seeds are fixed for reproducibility; set `H4D_CHAOS_SEED` to replay a
//! single seed (e.g. `H4D_CHAOS_SEED=7 cargo test -p datacutter chaos`).

use datacutter::{
    run_graph, DataBuffer, EngineConfig, FaultKind, FaultPlan, FaultSite, FaultSpec, Filter,
    FilterContext, FilterError, FilterErrorKind, GraphSpec, RunFailure, RunOutcome, SchedulePolicy,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

type Factories = HashMap<String, datacutter::engine::FilterFactory>;

struct Source {
    count: u64,
}

impl Filter for Source {
    fn start(&mut self, ctx: &mut FilterContext) -> Result<(), FilterError> {
        let (copies, me) = (ctx.num_copies() as u64, ctx.copy_index() as u64);
        for tag in (0..self.count).filter(|t| t % copies == me) {
            ctx.emit(0, DataBuffer::new(tag, 8, tag))?;
        }
        Ok(())
    }
    fn process(
        &mut self,
        _: usize,
        _: DataBuffer,
        _: &mut FilterContext,
    ) -> Result<(), FilterError> {
        unreachable!("source has no inputs")
    }
}

struct Relay {
    log: Arc<Mutex<Vec<u64>>>,
}

impl Filter for Relay {
    fn process(
        &mut self,
        _: usize,
        buf: DataBuffer,
        ctx: &mut FilterContext,
    ) -> Result<(), FilterError> {
        self.log.lock().push(buf.tag());
        if ctx.output_count() > 0 {
            ctx.emit(0, buf)?;
        }
        Ok(())
    }
}

struct Case {
    spec: GraphSpec,
    factories: Factories,
    stage_names: Vec<String>,
    /// Per-stage tag logs (stage 1..).
    logs: Vec<Arc<Mutex<Vec<u64>>>>,
    buffers: u64,
}

fn policy_of(rng: &mut StdRng) -> SchedulePolicy {
    match rng.gen_range(0..3) {
        0 => SchedulePolicy::RoundRobin,
        1 => SchedulePolicy::DemandDriven,
        _ => SchedulePolicy::ByTagModulo,
    }
}

fn build_case(rng: &mut StdRng) -> Case {
    let buffers = rng.gen_range(5..80);
    let stages = rng.gen_range(1..4usize);
    let mut spec = GraphSpec::new().filter("stage0", rng.gen_range(1..3usize));
    let mut factories: Factories = HashMap::new();
    factories.insert(
        "stage0".into(),
        Box::new(move |_| Ok(Box::new(Source { count: buffers }))),
    );
    let mut stage_names = vec!["stage0".to_string()];
    let mut logs = Vec::new();
    for i in 1..=stages {
        let name = format!("stage{i}");
        let copies = rng.gen_range(1..4usize);
        let policy = policy_of(rng);
        spec =
            spec.filter(&name, copies)
                .stream(&format!("e{i}"), &stage_names[i - 1], &name, policy);
        let log = Arc::new(Mutex::new(Vec::new()));
        logs.push(log.clone());
        factories.insert(
            name.clone(),
            Box::new(move |_| Ok(Box::new(Relay { log: log.clone() }))),
        );
        stage_names.push(name);
    }
    Case {
        spec,
        factories,
        stage_names,
        logs,
        buffers,
    }
}

fn run_with_watchdog(spec: GraphSpec, mut factories: Factories) -> Result<RunOutcome, RunFailure> {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let r = run_graph(&spec, &mut factories, &EngineConfig::default());
        let _ = tx.send(r);
    });
    let result = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("run_graph deadlocked (watchdog expired)");
    handle.join().expect("driver thread panicked");
    result
}

fn seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("H4D_CHAOS_SEED") {
        return vec![s.parse().expect("H4D_CHAOS_SEED must be a u64")];
    }
    (0..16).collect()
}

#[test]
fn injected_lethal_faults_are_reported_as_root_cause() {
    for seed in seeds() {
        let mut rng = StdRng::seed_from_u64(seed);
        let case = build_case(&mut rng);
        // Arm one lethal fault at a random non-source stage: the first
        // buffer of any copy (guaranteed to fire — every stage receives
        // every buffer), or its start callback.
        let victim = case.stage_names[rng.gen_range(1..case.stage_names.len())].clone();
        let lethal_panic = rng.gen_bool(0.5);
        let site = if rng.gen_bool(0.3) {
            FaultSite::Start
        } else {
            FaultSite::Process
        };
        let plan = FaultPlan::new().with(FaultSpec {
            filter: victim.clone(),
            copy: None,
            site,
            at_buffer: 1,
            kind: if lethal_panic {
                FaultKind::Panic
            } else {
                FaultKind::Error
            },
            label: format!("chaos fault seed {seed}"),
        });
        let mut factories = case.factories;
        plan.apply_to_factories(&mut factories);
        let err =
            run_with_watchdog(case.spec, factories).expect_err("lethal fault must abort the run");
        let expect_kind = if lethal_panic {
            FilterErrorKind::Panic
        } else {
            FilterErrorKind::App
        };
        assert_eq!(err.error.kind(), expect_kind, "seed {seed}: {err}");
        assert_eq!(
            err.error.filter(),
            Some(victim.as_str()),
            "seed {seed}: root cause names the wrong filter: {err}"
        );
        assert!(
            err.error
                .message()
                .contains(&format!("chaos fault seed {seed}")),
            "seed {seed}: fault label lost: {err}"
        );
        assert!(!err.error.is_cascade(), "seed {seed}: cascade won: {err}");
    }
}

#[test]
fn benign_faults_do_not_change_results() {
    // Delays and emit-stalls are disruptions, not failures: every stage
    // must still see every tag exactly once.
    for seed in seeds() {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x5eed));
        let case = build_case(&mut rng);
        let victim = case.stage_names[rng.gen_range(1..case.stage_names.len())].clone();
        let kind = if rng.gen_bool(0.5) {
            FaultKind::Delay(Duration::from_millis(rng.gen_range(1..20)))
        } else {
            FaultKind::EmitStall
        };
        let plan = FaultPlan::new().with(FaultSpec {
            filter: victim,
            copy: Some(0),
            site: FaultSite::Process,
            at_buffer: rng.gen_range(1..4),
            kind,
            label: format!("benign chaos seed {seed}"),
        });
        let mut factories = case.factories;
        plan.apply_to_factories(&mut factories);
        run_with_watchdog(case.spec, factories)
            .unwrap_or_else(|e| panic!("seed {seed}: benign fault killed the run: {e}"));
        for (i, log) in case.logs.iter().enumerate() {
            let mut tags = log.lock().clone();
            tags.sort_unstable();
            let expect: Vec<u64> = (0..case.buffers).collect();
            assert_eq!(
                tags,
                expect,
                "seed {seed}: stage {} delivery changed under benign faults",
                i + 1
            );
        }
    }
}

#[test]
fn every_copy_reports_stats_under_chaos() {
    for seed in seeds() {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7));
        let case = build_case(&mut rng);
        let spawned: usize = case.spec.filters.iter().map(|f| f.copies).sum();
        let victim = case.stage_names[rng.gen_range(1..case.stage_names.len())].clone();
        let plan = FaultPlan::new().with(FaultSpec {
            filter: victim,
            copy: None,
            site: FaultSite::Process,
            at_buffer: 1,
            kind: FaultKind::Panic,
            label: format!("stats chaos seed {seed}"),
        });
        let mut factories = case.factories;
        plan.apply_to_factories(&mut factories);
        let err = run_with_watchdog(case.spec, factories).expect_err("fault must abort");
        assert_eq!(
            err.stats.per_copy.len(),
            spawned,
            "seed {seed}: not every spawned copy reported stats"
        );
    }
}
