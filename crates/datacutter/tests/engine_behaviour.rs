//! Behavioural tests of the threaded filter engine: delivery guarantees,
//! scheduling policies, pipelining, and failure containment.

use datacutter::{
    run_graph, DataBuffer, EngineConfig, Filter, FilterContext, FilterError, GraphSpec,
    SchedulePolicy,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Emits `count` u64 buffers tagged 0..count on output port 0.
struct Source {
    count: u64,
}

impl Filter for Source {
    fn start(&mut self, ctx: &mut FilterContext) -> Result<(), FilterError> {
        // Multiple source copies split the tag space so the union is exact.
        let (copies, me) = (ctx.num_copies() as u64, ctx.copy_index() as u64);
        for tag in (0..self.count).filter(|t| t % copies == me) {
            ctx.emit(0, DataBuffer::new(tag, 8, tag))?;
        }
        Ok(())
    }

    fn process(
        &mut self,
        _: usize,
        _: DataBuffer,
        _: &mut FilterContext,
    ) -> Result<(), FilterError> {
        unreachable!("source has no inputs")
    }
}

/// Passes buffers through, optionally transforming the payload and sleeping.
struct Worker {
    delay: Duration,
    add: u64,
    /// (copy_index, tag) log of everything this filter processed.
    log: Arc<Mutex<Vec<(usize, u64)>>>,
}

impl Filter for Worker {
    fn process(
        &mut self,
        _port: usize,
        buf: DataBuffer,
        ctx: &mut FilterContext,
    ) -> Result<(), FilterError> {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        let v = *buf.expect::<u64>();
        self.log.lock().push((ctx.copy_index(), buf.tag()));
        if ctx.output_count() > 0 {
            ctx.emit(0, DataBuffer::new(v + self.add, 8, buf.tag()))?;
        }
        Ok(())
    }
}

/// Collects payloads.
struct Sink {
    out: Arc<Mutex<Vec<u64>>>,
}

impl Filter for Sink {
    fn process(
        &mut self,
        _: usize,
        buf: DataBuffer,
        _: &mut FilterContext,
    ) -> Result<(), FilterError> {
        self.out.lock().push(*buf.expect::<u64>());
        Ok(())
    }
}

type Factories = HashMap<String, datacutter::engine::FilterFactory>;

fn factories() -> Factories {
    HashMap::new()
}

fn add_source(f: &mut Factories, name: &str, count: u64) {
    f.insert(
        name.to_string(),
        Box::new(move |_| Ok(Box::new(Source { count }))),
    );
}

fn add_worker(
    f: &mut Factories,
    name: &str,
    delay: Duration,
    add: u64,
) -> Arc<Mutex<Vec<(usize, u64)>>> {
    let log = Arc::new(Mutex::new(Vec::new()));
    let l2 = log.clone();
    f.insert(
        name.to_string(),
        Box::new(move |_| {
            Ok(Box::new(Worker {
                delay,
                add,
                log: l2.clone(),
            }))
        }),
    );
    log
}

fn add_sink(f: &mut Factories, name: &str) -> Arc<Mutex<Vec<u64>>> {
    let out = Arc::new(Mutex::new(Vec::new()));
    let o2 = out.clone();
    f.insert(
        name.to_string(),
        Box::new(move |_| Ok(Box::new(Sink { out: o2.clone() }))),
    );
    out
}

fn run(spec: &GraphSpec, f: &mut Factories) -> datacutter::RunOutcome {
    run_graph(spec, f, &EngineConfig::default()).expect("graph run failed")
}

#[test]
fn exactly_once_delivery_single_stage() {
    let spec = GraphSpec::new().filter("src", 1).filter("sink", 1).stream(
        "s",
        "src",
        "sink",
        SchedulePolicy::RoundRobin,
    );
    let mut f = factories();
    add_source(&mut f, "src", 500);
    let out = add_sink(&mut f, "sink");
    let outcome = run(&spec, &mut f);
    let mut got = out.lock().clone();
    got.sort_unstable();
    assert_eq!(got, (0..500).collect::<Vec<u64>>());
    assert_eq!(outcome.stats.buffers_into("sink"), 500);
    assert_eq!(outcome.stats.buffers_out_of("src"), 500);
}

#[test]
fn multi_copy_sources_cover_tag_space() {
    let spec = GraphSpec::new().filter("src", 4).filter("sink", 1).stream(
        "s",
        "src",
        "sink",
        SchedulePolicy::RoundRobin,
    );
    let mut f = factories();
    add_source(&mut f, "src", 1000);
    let out = add_sink(&mut f, "sink");
    run(&spec, &mut f);
    let mut got = out.lock().clone();
    got.sort_unstable();
    assert_eq!(got, (0..1000).collect::<Vec<u64>>());
}

#[test]
fn round_robin_balances_exactly() {
    let spec = GraphSpec::new()
        .filter("src", 1)
        .filter("w", 4)
        .filter("sink", 1)
        .stream("a", "src", "w", SchedulePolicy::RoundRobin)
        .stream("b", "w", "sink", SchedulePolicy::RoundRobin);
    let mut f = factories();
    add_source(&mut f, "src", 400);
    add_worker(&mut f, "w", Duration::ZERO, 0);
    add_sink(&mut f, "sink");
    let outcome = run(&spec, &mut f);
    let per = outcome.stats.per_copy_buffers_in("w");
    for (&copy, &n) in &per {
        assert_eq!(n, 100, "copy {copy} received {n}, want exactly 100");
    }
}

#[test]
fn demand_driven_favours_fast_copies() {
    // Copy speeds differ 20x; a shared queue should route most buffers to
    // the fast copy. With round-robin this is impossible (exact halves).
    let spec = GraphSpec::new()
        .filter("src", 1)
        .filter("w", 2)
        .filter("sink", 1)
        .stream_with_capacity("a", "src", "w", SchedulePolicy::DemandDriven, 1)
        .stream("b", "w", "sink", SchedulePolicy::RoundRobin);
    let mut f = factories();
    add_source(&mut f, "src", 120);
    // Per-copy delays: copy 0 slow, copy 1 fast.
    let log = Arc::new(Mutex::new(Vec::new()));
    let l2 = log.clone();
    f.insert(
        "w".to_string(),
        Box::new(move |copy| {
            Ok(Box::new(Worker {
                delay: if copy == 0 {
                    Duration::from_millis(4)
                } else {
                    Duration::from_micros(200)
                },
                add: 0,
                log: l2.clone(),
            }))
        }),
    );
    add_sink(&mut f, "sink");
    run(&spec, &mut f);
    let log = log.lock();
    let fast = log.iter().filter(|(c, _)| *c == 1).count();
    let slow = log.len() - fast;
    assert_eq!(log.len(), 120);
    assert!(
        fast > 3 * slow,
        "demand-driven skew missing: fast={fast} slow={slow}"
    );
}

#[test]
fn tag_modulo_routes_deterministically() {
    let spec = GraphSpec::new()
        .filter("src", 1)
        .filter("w", 3)
        .filter("sink", 1)
        .stream("a", "src", "w", SchedulePolicy::ByTagModulo)
        .stream("b", "w", "sink", SchedulePolicy::RoundRobin);
    let mut f = factories();
    add_source(&mut f, "src", 99);
    let log = add_worker(&mut f, "w", Duration::ZERO, 0);
    add_sink(&mut f, "sink");
    run(&spec, &mut f);
    for (copy, tag) in log.lock().iter() {
        assert_eq!(*copy as u64, tag % 3, "tag {tag} on wrong copy {copy}");
    }
}

#[test]
fn broadcast_reaches_every_copy() {
    let spec = GraphSpec::new()
        .filter("src", 1)
        .filter("w", 3)
        .filter("sink", 1)
        .stream("a", "src", "w", SchedulePolicy::Broadcast)
        .stream("b", "w", "sink", SchedulePolicy::RoundRobin);
    let mut f = factories();
    add_source(&mut f, "src", 50);
    let log = add_worker(&mut f, "w", Duration::ZERO, 0);
    let out = add_sink(&mut f, "sink");
    run(&spec, &mut f);
    assert_eq!(log.lock().len(), 150, "3 copies x 50 buffers");
    assert_eq!(out.lock().len(), 150);
    for copy in 0..3 {
        let n = log.lock().iter().filter(|(c, _)| *c == copy).count();
        assert_eq!(n, 50, "copy {copy} missed broadcasts");
    }
}

#[test]
fn three_stage_pipeline_transforms_values() {
    let spec = GraphSpec::new()
        .filter("src", 1)
        .filter("w1", 2)
        .filter("w2", 2)
        .filter("sink", 1)
        .stream("a", "src", "w1", SchedulePolicy::DemandDriven)
        .stream("b", "w1", "w2", SchedulePolicy::DemandDriven)
        .stream("c", "w2", "sink", SchedulePolicy::DemandDriven);
    let mut f = factories();
    add_source(&mut f, "src", 200);
    add_worker(&mut f, "w1", Duration::ZERO, 1000);
    add_worker(&mut f, "w2", Duration::ZERO, 100_000);
    let out = add_sink(&mut f, "sink");
    run(&spec, &mut f);
    let mut got = out.lock().clone();
    got.sort_unstable();
    let expect: Vec<u64> = (0..200).map(|v| v + 101_000).collect();
    assert_eq!(got, expect);
}

#[test]
fn filter_error_aborts_run_without_deadlock() {
    struct Faulty {
        seen: u64,
    }
    impl Filter for Faulty {
        fn process(
            &mut self,
            _: usize,
            buf: DataBuffer,
            ctx: &mut FilterContext,
        ) -> Result<(), FilterError> {
            self.seen += 1;
            if self.seen == 5 {
                return Err(FilterError::msg("injected fault"));
            }
            ctx.emit(0, buf)
        }
    }
    // Tiny queue capacities so the producer would deadlock if failure did
    // not cascade.
    let spec = GraphSpec::new()
        .filter("src", 1)
        .filter("bad", 1)
        .filter("sink", 1)
        .stream_with_capacity("a", "src", "bad", SchedulePolicy::RoundRobin, 1)
        .stream_with_capacity("b", "bad", "sink", SchedulePolicy::RoundRobin, 1);
    let mut f = factories();
    add_source(&mut f, "src", 10_000);
    f.insert(
        "bad".to_string(),
        Box::new(|_| Ok(Box::new(Faulty { seen: 0 }))),
    );
    add_sink(&mut f, "sink");
    let err = run_graph(&spec, &mut f, &EngineConfig::default()).unwrap_err();
    assert!(
        err.error.message().contains("injected fault"),
        "root cause not reported: {err}"
    );
    assert_eq!(
        err.error.filter(),
        Some("bad"),
        "root cause must name the filter"
    );
    assert!(
        !err.error.is_cascade(),
        "cascade symptom reported instead of root cause: {err}"
    );
}

#[test]
fn missing_factory_is_reported() {
    let spec = GraphSpec::new().filter("src", 1).filter("sink", 1).stream(
        "s",
        "src",
        "sink",
        SchedulePolicy::RoundRobin,
    );
    let mut f = factories();
    add_source(&mut f, "src", 1);
    let err = run_graph(&spec, &mut f, &EngineConfig::default()).unwrap_err();
    assert!(err.error.message().contains("no factory"));
    assert_eq!(err.error.kind(), datacutter::FilterErrorKind::Engine);
}

#[test]
fn stats_account_bytes_and_buffers() {
    let spec = GraphSpec::new()
        .filter("src", 1)
        .filter("w", 2)
        .filter("sink", 1)
        .stream("a", "src", "w", SchedulePolicy::RoundRobin)
        .stream("b", "w", "sink", SchedulePolicy::RoundRobin);
    let mut f = factories();
    add_source(&mut f, "src", 64);
    add_worker(&mut f, "w", Duration::ZERO, 0);
    add_sink(&mut f, "sink");
    let outcome = run(&spec, &mut f);
    let s = &outcome.stats;
    assert_eq!(s.buffers_out_of("src"), 64);
    assert_eq!(s.buffers_into("w"), 64);
    assert_eq!(s.buffers_out_of("w"), 64);
    assert_eq!(s.buffers_into("sink"), 64);
    assert_eq!(s.bytes_out_of("src"), 64 * 8);
    assert!(s.wall > Duration::ZERO);
    // Per-copy records exist for every copy.
    assert_eq!(s.copies_of("w").len(), 2);
}

#[test]
fn fan_in_from_two_producers() {
    // Two distinct source filters feed different ports of one consumer.
    struct PortSink {
        log: Arc<Mutex<Vec<(usize, u64)>>>,
    }
    impl Filter for PortSink {
        fn process(
            &mut self,
            port: usize,
            buf: DataBuffer,
            _: &mut FilterContext,
        ) -> Result<(), FilterError> {
            self.log.lock().push((port, *buf.expect::<u64>()));
            Ok(())
        }
    }
    let spec = GraphSpec::new()
        .filter("src_a", 1)
        .filter("src_b", 1)
        .filter("sink", 1)
        .stream("a", "src_a", "sink", SchedulePolicy::RoundRobin)
        .stream("b", "src_b", "sink", SchedulePolicy::RoundRobin);
    let mut f = factories();
    add_source(&mut f, "src_a", 10);
    add_source(&mut f, "src_b", 20);
    let log = Arc::new(Mutex::new(Vec::new()));
    let l2 = log.clone();
    f.insert(
        "sink".to_string(),
        Box::new(move |_| Ok(Box::new(PortSink { log: l2.clone() }))),
    );
    run(&spec, &mut f);
    let log = log.lock();
    assert_eq!(log.iter().filter(|(p, _)| *p == 0).count(), 10);
    assert_eq!(log.iter().filter(|(p, _)| *p == 1).count(), 20);
}
