//! Fallible spin-up: a factory that returns `Err` or panics must yield a
//! typed `RunFailure` — never a propagated panic out of `run_graph` — with
//!
//! * the root cause's kind preserved (`Io`/`App` from `Err`, `Panic` from a
//!   panicking factory) and stamped with the failing filter copy,
//! * every copy spawned *before* the failure drained, joined, and reported
//!   in the failure's statistics,
//! * a watchdog-bounded return (no deadlock waiting on never-spawned
//!   consumers).

use datacutter::{
    run_graph, DataBuffer, EngineConfig, Filter, FilterContext, FilterError, FilterErrorKind,
    GraphSpec, RunFailure, RunOutcome, SchedulePolicy,
};
use std::collections::HashMap;
use std::sync::mpsc;
use std::time::Duration;

type Factories = HashMap<String, datacutter::engine::FilterFactory>;

struct Source {
    count: u64,
}

impl Filter for Source {
    fn start(&mut self, ctx: &mut FilterContext) -> Result<(), FilterError> {
        for tag in 0..self.count {
            ctx.emit(0, DataBuffer::new(tag, 8, tag))?;
        }
        Ok(())
    }
    fn process(
        &mut self,
        _: usize,
        _: DataBuffer,
        _: &mut FilterContext,
    ) -> Result<(), FilterError> {
        unreachable!("source has no inputs")
    }
}

struct Relay;

impl Filter for Relay {
    fn process(
        &mut self,
        _: usize,
        buf: DataBuffer,
        ctx: &mut FilterContext,
    ) -> Result<(), FilterError> {
        if ctx.output_count() > 0 {
            ctx.emit(0, buf)?;
        }
        Ok(())
    }
}

/// src(2) -> w(2) -> sink(1). Filters spawn in declaration order, so a
/// factory failing at `w` copy 1 leaves exactly 3 copies running (both
/// `src` copies and `w` copy 0).
fn graph() -> GraphSpec {
    GraphSpec::new()
        .filter("src", 2)
        .filter("w", 2)
        .filter("sink", 1)
        .stream("a", "src", "w", SchedulePolicy::RoundRobin)
        .stream("b", "w", "sink", SchedulePolicy::RoundRobin)
}

fn base_factories() -> Factories {
    let mut f: Factories = HashMap::new();
    f.insert(
        "src".to_string(),
        Box::new(|_| Ok(Box::new(Source { count: 40 }))),
    );
    f.insert("w".to_string(), Box::new(|_| Ok(Box::new(Relay))));
    f.insert("sink".to_string(), Box::new(|_| Ok(Box::new(Relay))));
    f
}

/// Runs the graph on a helper thread with a deadline: a hang is a test
/// failure, not a CI timeout.
fn run_with_watchdog(spec: GraphSpec, mut factories: Factories) -> Result<RunOutcome, RunFailure> {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let r = run_graph(&spec, &mut factories, &EngineConfig::default());
        let _ = tx.send(r);
    });
    let result = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("run_graph deadlocked (watchdog expired)");
    handle.join().expect("driver thread panicked");
    result
}

#[test]
fn err_returning_factory_yields_typed_root_cause() {
    let mut f = base_factories();
    f.insert(
        "w".to_string(),
        Box::new(|copy| {
            if copy == 1 {
                Err(FilterError::new(
                    FilterErrorKind::Io,
                    "dataset missing: /no/such/dir",
                ))
            } else {
                Ok(Box::new(Relay))
            }
        }),
    );
    let err = run_with_watchdog(graph(), f).expect_err("factory error must fail the run");
    assert_eq!(err.error.kind(), FilterErrorKind::Io, "{err}");
    assert!(
        !err.error.is_cascade(),
        "factory failure must never be reported as a cascade: {err}"
    );
    assert_eq!(
        (err.error.filter(), err.error.copy()),
        (Some("w"), Some(1)),
        "{err}"
    );
    assert!(err.error.message().contains("dataset missing"), "{err}");
    // The copies spawned before the failure (src x2, w copy 0) all drained
    // and reported their stats.
    assert_eq!(
        err.stats.per_copy.len(),
        3,
        "every spawned copy must be joined and reported: {:?}",
        err.stats.per_copy
    );
}

#[test]
fn panicking_factory_is_contained() {
    let mut f = base_factories();
    f.insert(
        "w".to_string(),
        Box::new(|copy| {
            if copy == 0 {
                panic!("factory exploded while opening copy {copy}");
            }
            Ok(Box::new(Relay))
        }),
    );
    let err = run_with_watchdog(graph(), f).expect_err("factory panic must fail the run");
    assert_eq!(err.error.kind(), FilterErrorKind::Panic, "{err}");
    assert_eq!(
        (err.error.filter(), err.error.copy()),
        (Some("w"), Some(0)),
        "{err}"
    );
    assert!(err.error.message().contains("factory exploded"), "{err}");
    // Only the two src copies were running.
    assert_eq!(err.stats.per_copy.len(), 2, "{:?}", err.stats.per_copy);
}

#[test]
fn factory_error_beats_cascades_from_spawned_copies() {
    // Fail the very last copy to spawn: every producer is already running
    // and will observe DownstreamClosed cascades, yet the typed factory
    // error must win root-cause selection.
    let mut f = base_factories();
    f.insert(
        "sink".to_string(),
        Box::new(|_| Err(FilterError::msg("sink configuration rejected"))),
    );
    let err = run_with_watchdog(graph(), f).expect_err("factory error must fail the run");
    assert_eq!(err.error.kind(), FilterErrorKind::App, "{err}");
    assert_eq!(
        (err.error.filter(), err.error.copy()),
        (Some("sink"), Some(0)),
        "{err}"
    );
    // All four upstream copies (src x2, w x2) joined and reported.
    assert_eq!(err.stats.per_copy.len(), 4, "{:?}", err.stats.per_copy);
}

#[test]
fn first_copy_factory_error_reports_no_stats() {
    let mut f = base_factories();
    f.insert(
        "src".to_string(),
        Box::new(|_| Err(FilterError::new(FilterErrorKind::Io, "cannot open node_00"))),
    );
    let err = run_with_watchdog(graph(), f).expect_err("factory error must fail the run");
    assert_eq!(err.error.kind(), FilterErrorKind::Io, "{err}");
    assert_eq!(
        (err.error.filter(), err.error.copy()),
        (Some("src"), Some(0)),
        "{err}"
    );
    assert!(err.stats.per_copy.is_empty(), "{:?}", err.stats.per_copy);
}
