//! Cross-crate integration: the facade crate's re-exports compose into the
//! full workflow, and the simulator's flow model agrees with the real
//! threaded engine's buffer accounting.

use haralick4d::cluster::calibrated_defaults::default_model;
use haralick4d::cluster::des::simulate;
use haralick4d::datacutter::SchedulePolicy;
use haralick4d::haralick::raster::Representation;
use haralick4d::mri::store::write_distributed;
use haralick4d::mri::synth::{generate, SynthConfig};
use haralick4d::pipeline::config::AppConfig;
use haralick4d::pipeline::graphs::{Copies, SplitGraph};
use haralick4d::pipeline::run::run_threaded;
use haralick4d::pipeline::simfilters::sim_factories;
use haralick4d::pipeline::Workload;
use std::path::PathBuf;
use std::sync::Arc;

fn setup(tag: &str, cfg: &AppConfig, seed: u64) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("h4d_xc_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let data = base.join("data");
    let out = base.join("out");
    std::fs::create_dir_all(&out).unwrap();
    let raw = generate(&SynthConfig {
        dims: cfg.dims,
        ..SynthConfig::test_scale(seed)
    });
    write_distributed(&raw, &data, "xc", cfg.storage_nodes).unwrap();
    (data, out)
}

/// The same graph topology run (a) for real on the threaded engine and
/// (b) analytically on the simulator must move the same number of buffers
/// through every stage — the flow model is exact, not approximate.
#[test]
fn simulator_flow_model_matches_real_engine_buffer_counts() {
    let cfg = Arc::new(AppConfig::test_scale(Representation::Sparse));
    let (data, out) = setup("flow", &cfg, 21);

    // Real run: 2 RFR, 1 IIC, 2 HCC, 1 HPC, 1 USO.
    let spec_real = SplitGraph {
        rfr: Copies::Count(2),
        iic: Copies::Count(1),
        hcc: Copies::Count(2),
        hpc: Copies::Count(1),
        uso: Copies::Count(1),
        texture_policy: SchedulePolicy::DemandDriven,
        matrix_policy: SchedulePolicy::DemandDriven,
    }
    .build();
    let real = run_threaded(&spec_real, &cfg, &data, &out).unwrap();

    // Simulated run: identical topology on a small modeled cluster.
    let cluster = haralick4d::cluster::presets::uniform(7);
    let spec_sim = SplitGraph {
        rfr: Copies::Placed(vec![0, 1]),
        iic: Copies::Placed(vec![2]),
        hcc: Copies::Placed(vec![3, 4]),
        hpc: Copies::Placed(vec![5]),
        uso: Copies::Placed(vec![6]),
        texture_policy: SchedulePolicy::DemandDriven,
        matrix_policy: SchedulePolicy::DemandDriven,
    }
    .build();
    let w = Arc::new(Workload::new((*cfg).clone()));
    let model = Arc::new(default_model());
    let mut factories = sim_factories(&spec_sim, &cluster, &w, &model);
    let sim = simulate(&spec_sim, &cluster, &mut factories);

    for filter in ["IIC", "HCC", "HPC", "USO"] {
        assert_eq!(
            real.buffers_into(filter),
            sim.buffers_into(filter),
            "{filter}: flow model diverges from the real engine"
        );
    }
    assert!(sim.makespan > 0.0);
}

/// Byte accounting agrees too (the communication volumes the paper's
/// figures hinge on).
#[test]
fn simulator_byte_model_tracks_real_engine() {
    let cfg = Arc::new(AppConfig::test_scale(Representation::Full));
    let (data, out) = setup("bytes", &cfg, 22);
    let spec = SplitGraph {
        rfr: Copies::Count(2),
        iic: Copies::Count(1),
        hcc: Copies::Count(1),
        hpc: Copies::Count(1),
        uso: Copies::Count(1),
        texture_policy: SchedulePolicy::DemandDriven,
        matrix_policy: SchedulePolicy::DemandDriven,
    }
    .build();
    let real = run_threaded(&spec, &cfg, &data, &out).unwrap();

    let cluster = haralick4d::cluster::presets::uniform(6);
    let spec_sim = SplitGraph {
        rfr: Copies::Placed(vec![0, 1]),
        iic: Copies::Placed(vec![2]),
        hcc: Copies::Placed(vec![3]),
        hpc: Copies::Placed(vec![4]),
        uso: Copies::Placed(vec![5]),
        texture_policy: SchedulePolicy::DemandDriven,
        matrix_policy: SchedulePolicy::DemandDriven,
    }
    .build();
    let w = Arc::new(Workload::new((*cfg).clone()));
    let model = Arc::new(default_model());
    let mut factories = sim_factories(&spec_sim, &cluster, &w, &model);
    let sim = simulate(&spec_sim, &cluster, &mut factories);

    // Chunk bytes into HCC must match exactly (deterministic geometry).
    assert_eq!(
        real.copies_of("HCC")
            .iter()
            .map(|c| c.bytes_in)
            .sum::<u64>(),
        sim.copies_of("HCC").iter().map(|c| c.bytes_in).sum::<u64>(),
        "IIC->HCC bytes diverge"
    );
    // Full-representation matrix bytes are exactly Ng^2-sized, so they too
    // must match.
    assert_eq!(
        real.copies_of("HPC")
            .iter()
            .map(|c| c.bytes_in)
            .sum::<u64>(),
        sim.copies_of("HPC").iter().map(|c| c.bytes_in).sum::<u64>(),
        "HCC->HPC bytes diverge"
    );
}

/// The result store composes through the facade: a cold run publishes and
/// a warm run serves every chunk, the `.h4dp` files are byte-identical
/// across the two, and the store counters flow into the same `RunReport`
/// the CLI's `--report` path emits (hits + misses == chunk count, the
/// invariant CI's jq assertions rely on).
#[test]
fn result_store_round_trips_through_the_facade() {
    use haralick4d::datacutter::RunReport;
    use haralick4d::pipeline::filters::UsoFilter;
    use haralick4d::pipeline::run::{run_threaded_outcome_with, IoRuntime};

    let base = std::env::temp_dir().join(format!("h4d_xc_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut cfg = AppConfig::test_scale(Representation::Full);
    cfg.canonical_output = true;
    cfg.result_store = Some(base.join("store"));
    let cfg = Arc::new(cfg);
    let (data, _) = setup("store", &cfg, 24);
    let spec = SplitGraph {
        rfr: Copies::Count(2),
        iic: Copies::Count(1),
        hcc: Copies::Count(2),
        hpc: Copies::Count(1),
        uso: Copies::Count(1),
        texture_policy: SchedulePolicy::DemandDriven,
        matrix_policy: SchedulePolicy::DemandDriven,
    }
    .build();
    let chunks = Workload::new((*cfg).clone()).grid.len() as u64;

    let mut reports = Vec::new();
    for out in [base.join("cold"), base.join("warm")] {
        std::fs::create_dir_all(&out).unwrap();
        let mut rt = IoRuntime::new();
        rt.attach_result_store(&cfg);
        let outcome = run_threaded_outcome_with(&spec, &cfg, &data, &out, &rt).unwrap();
        let mut report = RunReport::new(&spec, &outcome);
        rt.annotate(&mut report);
        report.check().expect("report invariants");
        reports.push(report.store.expect("store counters annotated"));
    }
    let (cold, warm) = (&reports[0], &reports[1]);
    assert_eq!((cold.hits, cold.misses), (0, cold.published));
    assert_eq!(
        (warm.hits, warm.misses, warm.published),
        (cold.misses, 0, 0)
    );
    assert!(
        cold.misses >= chunks,
        "split stores per-packet blobs: at least one lookup per chunk"
    );
    assert!(warm.bytes_served > 0 && cold.bytes_published > 0);

    for feature in cfg.selection.iter() {
        let name = UsoFilter::file_name(feature, 0);
        assert_eq!(
            std::fs::read(base.join("cold").join(&name)).unwrap(),
            std::fs::read(base.join("warm").join(&name)).unwrap(),
            "{name} differs between cold and warm facade runs"
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// Quantitative §4.4.1 claim at workload scale: the sparse representation
/// reduces the measured HCC→HPC traffic by more than an order of magnitude.
#[test]
fn sparse_transmission_cuts_real_traffic() {
    let traffic = |repr| {
        let cfg = Arc::new(AppConfig::test_scale(repr));
        let (data, out) = setup(&format!("traffic_{repr:?}"), &cfg, 23);
        let spec = SplitGraph {
            rfr: Copies::Count(2),
            iic: Copies::Count(1),
            hcc: Copies::Count(2),
            hpc: Copies::Count(1),
            uso: Copies::Count(1),
            texture_policy: SchedulePolicy::DemandDriven,
            matrix_policy: SchedulePolicy::DemandDriven,
        }
        .build();
        let stats = run_threaded(&spec, &cfg, &data, &out).unwrap();
        stats
            .copies_of("HPC")
            .iter()
            .map(|c| c.bytes_in)
            .sum::<u64>()
    };
    let full = traffic(Representation::Full);
    let sparse = traffic(Representation::Sparse);
    assert!(
        full > 15 * sparse,
        "sparse reduction too small: full {full} vs sparse {sparse}"
    );
}
