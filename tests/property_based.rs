//! Property-based tests (proptest) over the core data structures and
//! invariants: co-occurrence accumulation, sparse equivalence, feature
//! bounds, chunk-grid tiling, storage round-trips and quantization.

use haralick4d::haralick::features::MatrixStats;
use haralick4d::haralick::quantize::Quantizer;
use haralick4d::haralick::{
    compute_features, CoMatrix, Dims4, Direction, DirectionSet, Feature, FeatureSelection,
    LevelVolume, Point4, Region4, RoiShape, SparseAccumulator, SparseCoMatrix,
};
use haralick4d::mri::chunks::ChunkGrid;
use haralick4d::mri::raw::RawVolume;
use proptest::prelude::*;

/// Strategy: a small random 4D level volume with `Ng = levels`.
fn level_volume(levels: u16) -> impl Strategy<Value = LevelVolume> {
    (2usize..7, 2usize..7, 1usize..4, 1usize..4)
        .prop_flat_map(move |(x, y, z, t)| {
            let n = x * y * z * t;
            (
                Just(Dims4::new(x, y, z, t)),
                proptest::collection::vec(0u8..(levels as u8), n),
            )
        })
        .prop_map(move |(dims, data)| LevelVolume::from_raw(dims, data, levels).unwrap())
}

/// Strategy: a random non-zero unit displacement.
fn direction() -> impl Strategy<Value = Direction> {
    (-1i32..=1, -1i32..=1, -1i32..=1, -1i32..=1)
        .prop_filter("non-zero", |(a, b, c, d)| {
            *a != 0 || *b != 0 || *c != 0 || *d != 0
        })
        .prop_map(|(a, b, c, d)| Direction::new(a, b, c, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cooccurrence_is_symmetric_and_conserves_total(
        vol in level_volume(8),
        d in direction(),
    ) {
        let m = CoMatrix::from_region(&vol, vol.full_region(), &DirectionSet::single(d));
        prop_assert!(m.is_symmetric());
        let sum: u64 = m.as_slice().iter().map(|&c| u64::from(c)).sum();
        prop_assert_eq!(sum, m.total());
        // Total is even: every pair counted forward and backward.
        prop_assert_eq!(m.total() % 2, 0);
    }

    #[test]
    fn opposite_displacements_give_identical_matrices(
        vol in level_volume(6),
        d in direction(),
    ) {
        let f = CoMatrix::from_region(&vol, vol.full_region(), &DirectionSet::single(d));
        let b = CoMatrix::from_region(&vol, vol.full_region(), &DirectionSet::single(d.negate()));
        prop_assert_eq!(f, b);
    }

    #[test]
    fn sparse_accumulation_equals_dense_conversion(
        vol in level_volume(8),
        d in direction(),
    ) {
        let dirs = DirectionSet::single(d);
        let dense = CoMatrix::from_region(&vol, vol.full_region(), &dirs);
        let via_dense = SparseCoMatrix::from_dense(&dense);
        let direct = SparseAccumulator::from_region(&vol, vol.full_region(), &dirs);
        prop_assert_eq!(via_dense, direct);
    }

    #[test]
    fn features_agree_across_representations(
        vol in level_volume(8),
        d in direction(),
    ) {
        let dirs = DirectionSet::single(d);
        let m = CoMatrix::from_region(&vol, vol.full_region(), &dirs);
        let sel = FeatureSelection::all();
        let a = compute_features(&m.stats_checked(), &sel);
        let b = compute_features(&m.stats_naive(), &sel);
        let s = SparseCoMatrix::from_dense(&m);
        let c = compute_features(&MatrixStats::from_sparse(&s), &sel);
        for f in Feature::ALL {
            let (x, y, z) = (a.get(f).unwrap(), b.get(f).unwrap(), c.get(f).unwrap());
            prop_assert!((x - y).abs() < 1e-9, "{:?} checked {} vs naive {}", f, x, y);
            prop_assert!((x - z).abs() < 1e-9, "{:?} checked {} vs sparse {}", f, x, z);
        }
    }

    #[test]
    fn feature_bounds_hold(vol in level_volume(8), d in direction()) {
        let dirs = DirectionSet::single(d);
        let m = CoMatrix::from_region(&vol, vol.full_region(), &dirs);
        let f = compute_features(&m.stats_checked(), &FeatureSelection::all());
        let get = |feat| f.get(feat).unwrap();
        prop_assert!((0.0..=1.0).contains(&get(Feature::AngularSecondMoment)));
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&get(Feature::Correlation)));
        prop_assert!((0.0..=1.0).contains(&get(Feature::InverseDifferenceMoment)));
        prop_assert!(get(Feature::Entropy) >= 0.0);
        prop_assert!(get(Feature::SumEntropy) >= 0.0);
        prop_assert!(get(Feature::DifferenceEntropy) >= 0.0);
        prop_assert!(get(Feature::SumOfSquares) >= 0.0);
        prop_assert!(get(Feature::SumVariance) >= -1e-12);
        prop_assert!(get(Feature::DifferenceVariance) >= -1e-12);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&get(Feature::InfoMeasureCorrelation2)));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&get(Feature::MaximalCorrelationCoefficient)));
    }

    #[test]
    fn level_shift_preserves_shiftinvariant_features(
        vol in level_volume(4),
        d in direction(),
        shift in 1u8..4,
    ) {
        // Shifting all gray levels by a constant leaves contrast-type
        // features unchanged (they depend only on level differences and
        // probabilities, not absolute levels).
        let dirs = DirectionSet::single(d);
        let shifted_data: Vec<u8> = vol.as_slice().iter().map(|&v| v + shift).collect();
        let shifted = LevelVolume::from_raw(vol.dims(), shifted_data, 8).unwrap();
        let widened = LevelVolume::from_raw(vol.dims(), vol.as_slice().to_vec(), 8).unwrap();
        let ma = CoMatrix::from_region(&widened, widened.full_region(), &dirs);
        let mb = CoMatrix::from_region(&shifted, shifted.full_region(), &dirs);
        let sel = FeatureSelection::of(&[
            Feature::AngularSecondMoment,
            Feature::Contrast,
            Feature::InverseDifferenceMoment,
            Feature::Entropy,
            Feature::DifferenceEntropy,
        ]);
        let fa = compute_features(&ma.stats_checked(), &sel);
        let fb = compute_features(&mb.stats_checked(), &sel);
        for feat in sel.iter() {
            let (x, y) = (fa.get(feat).unwrap(), fb.get(feat).unwrap());
            prop_assert!((x - y).abs() < 1e-9, "{:?}: {} vs {}", feat, x, y);
        }
    }

    #[test]
    fn chunk_grid_tiles_outputs_exactly(
        dx in 12usize..40,
        dy in 12usize..40,
        dz in 3usize..10,
        dt in 3usize..10,
        cx in 12usize..24,
        cz in 3usize..6,
    ) {
        let dims = Dims4::new(dx, dy, dz, dt);
        let roi = RoiShape::from_lengths(5, 5, 2, 2);
        let chunk_dims = Dims4::new(cx, cx, cz, cz);
        let grid = ChunkGrid::new(dims, roi, chunk_dims);
        let mut covered = vec![false; grid.out_dims().len()];
        for chunk in grid.chunks() {
            prop_assert!(dims.region().contains_region(&chunk.input));
            for p in chunk.owned_output.points() {
                let i = grid.out_dims().index(p);
                prop_assert!(!covered[i], "output {:?} owned twice", p);
                covered[i] = true;
                prop_assert!(chunk.input.contains_region(&roi.region_at(p)));
            }
        }
        prop_assert!(covered.iter().all(|&c| c), "uncovered outputs");
    }

    #[test]
    fn raw_volume_extract_paste_roundtrip(
        dims in (4usize..10, 4usize..10, 2usize..5, 2usize..5)
            .prop_map(|(x, y, z, t)| Dims4::new(x, y, z, t)),
        seed in 0u16..1000,
    ) {
        let data: Vec<u16> = (0..dims.len()).map(|i| (i as u16).wrapping_mul(seed)).collect();
        let vol = RawVolume::new(dims, data);
        let r = Region4::new(
            Point4::new(1, 1, 0, 0),
            Dims4::new(dims.x - 2, dims.y - 2, dims.z - 1, dims.t - 1),
        );
        let sub = vol.extract(r);
        let mut blank = RawVolume::zeros(dims);
        blank.paste(&sub, r.origin);
        for p in r.points() {
            prop_assert_eq!(blank.get(p), vol.get(p));
        }
        // Byte serialization round-trips too.
        let back = RawVolume::from_le_bytes(sub.dims(), &sub.to_le_bytes());
        prop_assert_eq!(back, sub);
    }

    #[test]
    fn quantizer_is_monotone_and_in_range(
        levels in 2u16..64,
        lo in 0u16..1000,
        span in 1u16..5000,
        samples in proptest::collection::vec(0u16..6000, 1..50),
    ) {
        let q = Quantizer::linear(levels, lo, lo.saturating_add(span));
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let mut prev = 0u8;
        for (i, &v) in sorted.iter().enumerate() {
            let l = q.level_of(v);
            prop_assert!((l as u16) < levels);
            if i > 0 {
                prop_assert!(l >= prev, "monotonicity violated");
            }
            prev = l;
        }
    }

    #[test]
    fn sliding_window_equals_rebuild_everywhere(
        vol in level_volume(6),
        d in direction(),
    ) {
        use haralick4d::haralick::window::SlidingWindow;
        let dims = vol.dims();
        let roi = Dims4::new(
            (dims.x / 2).max(1),
            (dims.y / 2).max(1),
            dims.z.min(2),
            dims.t.min(2),
        );
        let dirs = DirectionSet::single(d);
        let slides = dims.x - roi.x;
        let mut win = SlidingWindow::new(&vol, &dirs, roi, Point4::ZERO);
        for step in 1..=slides {
            win.slide_x();
            let expect = CoMatrix::from_region(
                &vol,
                Region4::new(Point4::new(step, 0, 0, 0), roi),
                &dirs,
            );
            prop_assert_eq!(win.matrix(), &expect, "divergence at slide {}", step);
        }
    }

    #[test]
    fn direction_set_never_contains_opposites(
        dirs in proptest::collection::vec(direction(), 1..20),
    ) {
        let set = DirectionSet::new(dirs);
        for (i, a) in set.iter().enumerate() {
            for b in set.directions()[i + 1..].iter() {
                prop_assert!(*a != b.negate(), "{} and {} are opposites", a, b);
                prop_assert!(a != b, "duplicate {}", a);
            }
        }
    }
}
