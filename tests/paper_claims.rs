//! The reproduction's headline guarantees as tests: every qualitative
//! result the paper states must hold when the experiments run on the
//! committed calibration snapshot. If a change to the kernels, cost model
//! or simulator flips one of these orderings, this suite fails.
//!
//! (Release mode recommended; each experiment is a paper-scale simulation
//! but completes in well under a second.)

use haralick4d::cluster::calibrated_defaults::default_model;
use haralick4d::datacutter::SchedulePolicy;
use haralick4d::haralick::raster::Representation;
use haralick4d::pipeline::experiments::{
    fig_chunksize, fig_iic, run_fig11, run_hmp_piii, run_split_piii, NODE_COUNTS,
};

#[test]
fn fig7a_full_beats_sparse_in_the_hmp_implementation() {
    let model = default_model();
    for &n in &NODE_COUNTS {
        let full = run_hmp_piii(&model, Representation::Full, n).makespan;
        let sparse = run_hmp_piii(&model, Representation::SparseAccum, n).makespan;
        assert!(
            full < sparse,
            "at {n} nodes: HMP full ({full:.0}s) must beat HMP sparse ({sparse:.0}s)"
        );
    }
}

#[test]
fn fig7a_hmp_scales_with_nodes() {
    let model = default_model();
    let t1 = run_hmp_piii(&model, Representation::Full, 1).makespan;
    let t16 = run_hmp_piii(&model, Representation::Full, 16).makespan;
    let speedup = t1 / t16;
    assert!(speedup > 10.0, "HMP speedup at 16 nodes only {speedup:.1}x");
}

#[test]
fn fig7b_sparse_beats_full_in_the_split_implementation() {
    let model = default_model();
    for &n in &NODE_COUNTS {
        let full = run_split_piii(&model, Representation::Full, n, false).makespan;
        let sparse = run_split_piii(&model, Representation::Sparse, n, false).makespan;
        assert!(
            sparse < full,
            "at {n} nodes: split sparse ({sparse:.0}s) must beat split full ({full:.0}s)"
        );
    }
    // And the gap is driven by communication: it widens with node count.
    let gap4 = run_split_piii(&model, Representation::Full, 4, false).makespan
        / run_split_piii(&model, Representation::Sparse, 4, false).makespan;
    assert!(gap4 > 3.0, "communication-bound gap too small: {gap4:.1}x");
}

#[test]
fn fig8_overlap_beats_no_overlap_and_hmp() {
    let model = default_model();
    for &n in &[2usize, 4, 8, 16] {
        let overlap = run_split_piii(&model, Representation::Sparse, n, true).makespan;
        let no_overlap = run_split_piii(&model, Representation::Sparse, n, false).makespan;
        let hmp = run_hmp_piii(&model, Representation::Full, n).makespan;
        assert!(
            overlap < no_overlap,
            "at {n} nodes: Overlap ({overlap:.0}s) must beat No-Overlap ({no_overlap:.0}s)"
        );
        assert!(
            overlap < hmp,
            "at {n} nodes: Overlap ({overlap:.0}s) must beat HMP ({hmp:.0}s)"
        );
    }
}

#[test]
fn fig8_one_node_split_beats_one_node_hmp() {
    // "in the one-node case, the split HCC and HPC filter implementation
    // performs better than the HMP filter implementation" — pipelining.
    let model = default_model();
    let split = run_split_piii(&model, Representation::Sparse, 1, false).makespan;
    let hmp = run_hmp_piii(&model, Representation::Full, 1).makespan;
    assert!(split < hmp, "one-node split {split:.0}s vs HMP {hmp:.0}s");
}

#[test]
fn fig9_filter_profile_trends() {
    let model = default_model();
    let r4 = run_split_piii(&model, Representation::Sparse, 4, false);
    let r16 = run_split_piii(&model, Representation::Sparse, 16, false);
    // HCC busy falls with more nodes.
    assert!(r16.max_busy_of("HCC") < 0.5 * r4.max_busy_of("HCC"));
    // RFR/IIC/USO are per-copy constant: the same service work regardless
    // of texture node count.
    for f in ["RFR", "IIC", "USO"] {
        let (a, b) = (r4.max_busy_of(f), r16.max_busy_of(f));
        assert!(
            (a - b).abs() < 0.05 * a.max(b),
            "{f} busy should be flat: {a:.1} vs {b:.1}"
        );
    }
    // Read and write are small relative to the texture computation at
    // moderate scale.
    assert!(r4.max_busy_of("RFR") < 0.2 * r4.max_busy_of("HCC"));
    assert!(r4.max_busy_of("USO") < 0.2 * r4.max_busy_of("HCC"));
}

#[test]
fn fig10_split_beats_hmp_in_the_heterogeneous_environment() {
    let model = default_model();
    let s = haralick4d::pipeline::experiments::fig10(&model);
    let hmp = s.get("HMP Implementation", 23).expect("HMP point");
    let split = s.get("HCC+HPC", 18).expect("split point");
    assert!(
        split < hmp,
        "split ({split:.0}s) must beat HMP ({hmp:.0}s) on PIII+XEON"
    );
}

#[test]
fn fig11_demand_driven_beats_round_robin_with_the_right_skew() {
    let model = default_model();
    let rr = run_fig11(&model, SchedulePolicy::RoundRobin);
    let dd = run_fig11(&model, SchedulePolicy::DemandDriven);
    assert!(
        dd.report.makespan < rr.report.makespan,
        "DD ({:.0}s) must beat RR ({:.0}s)",
        dd.report.makespan,
        rr.report.makespan
    );
    // Round robin splits evenly; demand driven favours OPTERON.
    assert!((rr.xeon_buffers as i64 - rr.opteron_buffers as i64).abs() <= 1);
    assert!(
        dd.opteron_buffers > dd.xeon_buffers + 20,
        "OPTERON skew missing: {} vs {}",
        dd.opteron_buffers,
        dd.xeon_buffers
    );
}

#[test]
fn iic_replication_scales_per_copy_busy_time_linearly() {
    let model = default_model();
    let s = fig_iic(&model);
    let b1 = s.get("IIC busy (max copy)", 1).unwrap();
    let b4 = s.get("IIC busy (max copy)", 4).unwrap();
    assert!(
        (b1 / b4 - 4.0).abs() < 0.5,
        "4 IIC copies should quarter the per-copy busy time: {b1:.2} -> {b4:.2}"
    );
}

#[test]
fn chunk_size_curve_is_u_shaped_with_minimum_at_the_papers_choice() {
    let model = default_model();
    let s = fig_chunksize(&model);
    let t = |edge| s.get("Execution time", edge).unwrap();
    assert!(t(16) > t(32), "tiny chunks must pay overlap volume");
    assert!(t(64) < t(32), "the paper's 64 must beat 32");
    assert!(
        t(64) < t(128),
        "oversize chunks must pay distribution granularity"
    );
    // And retrieval volume decreases monotonically with chunk size.
    let v = |edge| s.get("Retrieval volume (Mvoxels)", edge).unwrap();
    assert!(v(16) > v(32) && v(32) > v(64) && v(64) > v(128));
}
