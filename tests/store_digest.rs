//! Property-based tests (proptest) over the result store's key recipe and
//! blob integrity: chunk keys are pure functions of content + config
//! (visit-order invariant), any single-voxel or single-config-field change
//! moves the key, and corrupted or truncated blobs are detected, evicted
//! and recomputed — never served.

use haralick4d::haralick::direction::{Direction, DirectionSet};
use haralick4d::haralick::features::{Feature, FeatureSelection};
use haralick4d::haralick::quantize::Quantizer;
use haralick4d::haralick::raster::{Representation, ScanEngine};
use haralick4d::haralick::{Dims4, Point4, RoiShape};
use haralick4d::mri::chunks::ChunkGrid;
use haralick4d::mri::raw::RawVolume;
use haralick4d::pipeline::config::AppConfig;
use haralick4d::pipeline::payload::ParamPacket;
use haralick4d::pipeline::store::{
    config_digest, KeyRecipe, ResultStore, StoreSession, StoreStage,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A config whose geometry matches the generated grid; everything else at
/// test-scale defaults.
fn cfg_for(dims: Dims4, roi: RoiShape, chunk_dims: Dims4) -> AppConfig {
    let mut cfg = AppConfig::test_scale(Representation::Full);
    cfg.dims = dims;
    cfg.roi = roi;
    cfg.chunk_dims = chunk_dims;
    cfg
}

/// Deterministic pseudo-random raw content in the quantizer's range.
fn fill(dims: Dims4, seed: u16) -> RawVolume {
    let data: Vec<u16> = (0..dims.len())
        .map(|i| (i as u16).wrapping_mul(seed.max(1)).wrapping_add(seed) % 4000)
        .collect();
    RawVolume::new(dims, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chunk_keys_are_visit_order_invariant_and_distinct(
        dx in 12usize..32,
        dy in 12usize..32,
        dz in 3usize..8,
        dt in 3usize..8,
        cx in 12usize..20,
        cz in 3usize..5,
        seed in 1u16..1000,
    ) {
        let dims = Dims4::new(dx, dy, dz, dt);
        let roi = RoiShape::from_lengths(5, 5, 2, 2);
        let chunk_dims = Dims4::new(cx, cx, cz, cz);
        let cfg = cfg_for(dims, roi, chunk_dims);
        let grid = ChunkGrid::new(dims, roi, chunk_dims);
        let vol = fill(dims, seed);

        // Forward visit order with one recipe, reverse order with a fresh
        // one: the per-chunk keys must agree — nothing about a key depends
        // on what was digested before it.
        let recipe = KeyRecipe::new(&cfg, StoreStage::Params);
        let forward: Vec<u64> = grid
            .chunks()
            .map(|c| {
                let content = recipe.content_digest(&c, &vol.extract(c.input));
                recipe.key(&c, content, 0).digest
            })
            .collect();
        let recipe2 = KeyRecipe::new(&cfg, StoreStage::Params);
        let chunks: Vec<_> = grid.chunks().collect();
        let mut backward: Vec<u64> = chunks
            .iter()
            .rev()
            .map(|c| {
                let content = recipe2.content_digest(c, &vol.extract(c.input));
                recipe2.key(c, content, 0).digest
            })
            .collect();
        backward.reverse();
        prop_assert_eq!(&forward, &backward);

        // Distinct chunks get distinct keys (chunk identity is folded in).
        let mut sorted = forward.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), forward.len(), "key collision across chunks");
    }

    #[test]
    fn single_voxel_change_moves_the_key(
        dx in 12usize..28,
        dz in 3usize..6,
        seed in 1u16..1000,
        pick in any::<usize>(),
        voxel in any::<usize>(),
    ) {
        let dims = Dims4::new(dx, dx, dz, dz);
        let roi = RoiShape::from_lengths(5, 5, 2, 2);
        let chunk_dims = Dims4::new(12, 12, 3, 3);
        let cfg = cfg_for(dims, roi, chunk_dims);
        let grid = ChunkGrid::new(dims, roi, chunk_dims);
        let chunks: Vec<_> = grid.chunks().collect();
        let chunk = chunks[pick % chunks.len()];
        let vol = fill(dims, seed);
        let raw = vol.extract(chunk.input);

        let mut data = raw.as_slice().to_vec();
        let i = voxel % data.len();
        data[i] = (data[i] + 1) % 4000;
        let edited = RawVolume::new(raw.dims(), data);

        let recipe = KeyRecipe::new(&cfg, StoreStage::Params);
        let a = recipe.content_digest(&chunk, &raw);
        let b = recipe.content_digest(&chunk, &edited);
        prop_assert_ne!(a, b, "voxel {} change left the content digest fixed", i);
        prop_assert_ne!(
            recipe.key(&chunk, a, 0).digest,
            recipe.key(&chunk, b, 0).digest
        );
    }

    #[test]
    fn packet_index_and_stage_separate_keys(
        seed in 1u16..1000,
        i in 0usize..16,
        j in 0usize..16,
    ) {
        let cfg = AppConfig::test_scale(Representation::Full);
        let grid = ChunkGrid::new(cfg.dims, cfg.roi, cfg.chunk_dims);
        let chunk = grid.chunks().next().unwrap();
        let raw = fill(chunk.input.size, seed);
        let params = KeyRecipe::new(&cfg, StoreStage::Params);
        let matrices = KeyRecipe::new(&cfg, StoreStage::Matrices);
        let content = params.content_digest(&chunk, &raw);
        if i != j {
            prop_assert_ne!(
                params.key(&chunk, content, i).digest,
                params.key(&chunk, content, j).digest,
                "packets {} and {} share a key", i, j
            );
        }
        // The same chunk content under the other stage is a different key:
        // parameter maps can never be served where matrices are expected.
        let m_content = matrices.content_digest(&chunk, &raw);
        prop_assert_ne!(
            params.key(&chunk, content, i).digest,
            matrices.key(&chunk, m_content, i).digest
        );
    }
}

#[test]
fn every_semantic_config_field_moves_the_fingerprint() {
    let base = AppConfig::test_scale(Representation::Full);
    let d0 = config_digest(&base);

    let mutations: Vec<(&str, Box<dyn Fn(&mut AppConfig)>)> = vec![
        ("levels", Box::new(|c| c.levels = 16)),
        (
            "quantizer",
            Box::new(|c| c.quantizer = Quantizer::linear(32, 0, 2000)),
        ),
        (
            "roi",
            Box::new(|c| c.roi = RoiShape::from_lengths(4, 4, 2, 2)),
        ),
        (
            "directions",
            Box::new(|c| c.directions = DirectionSet::single(Direction::new(1, 0, 0, 0))),
        ),
        (
            "selection",
            Box::new(|c| c.selection = FeatureSelection::all()),
        ),
        (
            "representation",
            Box::new(|c| c.representation = Representation::Sparse),
        ),
        ("engine", Box::new(|c| c.engine = ScanEngine::Parallel)),
        ("packet_split", Box::new(|c| c.packet_split = 2)),
    ];
    for (name, mutate) in &mutations {
        let mut c = base.clone();
        mutate(&mut c);
        assert_ne!(
            config_digest(&c),
            d0,
            "{name} changed but the config fingerprint did not"
        );
    }

    // Value-neutral knobs (where or how fast to run, not what to compute)
    // must NOT move the fingerprint — otherwise moving a store directory or
    // adding threads would discard every cached result.
    let neutral: Vec<(&str, Box<dyn Fn(&mut AppConfig)>)> = vec![
        ("texture_threads", Box::new(|c| c.texture_threads = 4)),
        ("canonical_output", Box::new(|c| c.canonical_output = true)),
        ("io_cache_bytes", Box::new(|c| c.io_cache_bytes = 0)),
        ("read_ahead_chunks", Box::new(|c| c.read_ahead_chunks = 3)),
        ("storage_nodes", Box::new(|c| c.storage_nodes = 7)),
        (
            "transport_checksum",
            Box::new(|c| c.transport_checksum = true),
        ),
        (
            "result_store",
            Box::new(|c| c.result_store = Some(PathBuf::from("/elsewhere"))),
        ),
    ];
    for (name, mutate) in &neutral {
        let mut c = base.clone();
        mutate(&mut c);
        assert_eq!(
            config_digest(&c),
            d0,
            "value-neutral knob {name} must not invalidate the store"
        );
    }
}

/// Unique store directory per proptest case (cases run sequentially but
/// shrinking revisits them; never share state between cases).
fn case_dir() -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("h4d_digestprop_{}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn corrupted_or_truncated_blobs_are_never_served(
        values in proptest::collection::vec(-1e3f64..1e3, 1..40),
        corrupt_at in any::<usize>(),
        truncate in any::<bool>(),
    ) {
        let dir = case_dir();
        let cfg = AppConfig::test_scale(Representation::Full);
        let grid = ChunkGrid::new(cfg.dims, cfg.roi, cfg.chunk_dims);
        let chunk = grid.chunks().next().unwrap();
        let raw = fill(chunk.input.size, 7);
        let recipe = KeyRecipe::new(&cfg, StoreStage::Params);
        let key = recipe.key(&chunk, recipe.content_digest(&chunk, &raw), 0);
        let packet = ParamPacket {
            feature: Feature::Contrast,
            points: Arc::new(vec![Point4::ZERO; values.len()]),
            values: values.clone(),
        };

        let store = ResultStore::open_fs(&dir).unwrap();
        let writer = StoreSession::new(&store, &cfg);
        writer.publish_params(&key, std::slice::from_ref(&packet));
        writer.commit().unwrap();

        // Intact round-trip first: served bit-exactly.
        let reader = StoreSession::new(&store, &cfg);
        let served = reader.lookup_params(&key).expect("intact blob is served");
        prop_assert_eq!(served.len(), 1);
        prop_assert!(served[0].feature == Feature::Contrast);
        for (a, b) in served[0].values.iter().zip(&values) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        // Corrupt the committed object in place: flip one byte or truncate.
        let hex = format!("{:016x}", key.digest);
        let path = dir
            .join("objects")
            .join(&hex[0..2])
            .join(&hex[2..4])
            .join(&hex);
        prop_assert!(path.exists(), "committed object missing at {:?}", path);
        let mut bytes = std::fs::read(&path).unwrap();
        if truncate {
            bytes.truncate(corrupt_at % bytes.len());
        } else {
            let i = corrupt_at % bytes.len();
            bytes[i] ^= 0xff;
        }
        std::fs::write(&path, &bytes).unwrap();

        // Detected, counted, evicted — and absolutely not served.
        let before = store.stats().corrupt_rejected();
        prop_assert!(reader.lookup_params(&key).is_none());
        prop_assert_eq!(store.stats().corrupt_rejected(), before + 1);
        prop_assert!(!path.exists(), "corrupt blob must be evicted");

        // The follow-up lookup is a clean miss, not another rejection.
        prop_assert!(reader.lookup_params(&key).is_none());
        prop_assert_eq!(store.stats().corrupt_rejected(), before + 1);

        // Recompute-and-republish heals the entry.
        let healer = StoreSession::new(&store, &cfg);
        healer.publish_params(&key, std::slice::from_ref(&packet));
        healer.commit().unwrap();
        let healed = reader.lookup_params(&key).expect("healed blob is served");
        for (a, b) in healed[0].values.iter().zip(&values) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
